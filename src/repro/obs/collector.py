"""Latency attribution: decompose per-operation latency into phases.

The paper's quantitative argument is resource attribution (Table 5-5
explains protocol differences via server CPU per op), so the obs layer
answers "where did this operation's time go?" for every remote-FS call:

``client_cpu``
    CPU consumed (and queued for) on the calling host inside the call.
``net``
    Network transit, both directions — computed as the *residual*
    ``e2e − client_cpu − retrans_wait − server_wall``, so time that no
    other phase claims (serialization, propagation, fault-injected
    latency) lands here by construction.
``retrans_wait``
    Time spent waiting on retransmission timers that fired (the wasted
    window between sending an attempt and giving up on it).
``server_queue``
    Queue-wait on the server: RPC thread-pool admission plus CPU queue.
``server_cpu``
    CPU service time on the server while handling the request.
``disk``
    Disk queue-wait plus mechanical service time under the handler.
``server_other``
    Server wall time no server phase claims (blocking on locks,
    callbacks to other clients, cache internals).

Because ``net`` and ``server_other`` are residuals, the seven phases sum
**exactly** to the measured end-to-end latency — the report's phase
budget is an identity, not an approximation.

Mechanically: each in-flight operation is a :class:`_Frame` pushed on
the current :class:`~repro.sim.process.Process`'s ``obs_frames`` stack.
Instrumented layers contribute ``(kind, seconds)`` pairs to the top
frame; queue waits are stamped at ``Resource.acquire`` time (the waiter
frame is captured *then*, because the grant later runs in the releasing
process's context).  The server ships its closed frame's phase tuple
back piggybacked on the RPC reply, so the client can fold server time
out of its residual.  No new simulation events, timeouts, or processes
are created: with obs enabled, schedules — and therefore golden trace
digests — are byte-identical to obs-off runs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .digest import QuantileDigest

__all__ = ["ObsCollector", "PHASES"]

#: phase names, in report order
PHASES = (
    "client_cpu",
    "net",
    "retrans_wait",
    "server_queue",
    "server_cpu",
    "disk",
    "server_other",
)


class _Frame:
    """One in-flight operation's accumulator (client or server side)."""

    __slots__ = ("side", "t0", "t1", "acc", "srv_phases")

    def __init__(self, side: str, t0: float):
        self.side = side
        self.t0 = t0
        self.t1: Optional[float] = None
        #: raw contribution kinds: "cpu.queue", "cpu.service",
        #: "disk.queue", "disk.service", "threads.queue", "retrans.wait"
        self.acc: Dict[str, float] = {}
        #: (queue, cpu, disk, other, wall) shipped back by the server
        self.srv_phases: Optional[Tuple[float, ...]] = None

    def add(self, kind: str, dt: float) -> None:
        self.acc[kind] = self.acc.get(kind, 0.0) + dt


class ObsCollector:
    """Accumulates phase attribution; attach via ``sim.enable_obs()``.

    All accumulation is pure floats and integer counts keyed by sorted
    strings, so :func:`repro.obs.report.obs_document` exports are
    byte-identical across same-seed runs.
    """

    def __init__(self, sim):
        self.sim = sim
        #: per-RPC-proc records: count, per-phase totals, e2e digest
        self.ops: Dict[str, Dict[str, Any]] = {}
        #: calls that raised at the client (timeout, remote error)
        self.failed: Dict[str, int] = {}
        #: global queue-wait accounting per resource kind (cpu/disk/threads)
        self.waits: Dict[str, Dict[str, float]] = {}
        #: global service-time totals per contribution kind
        self.totals: Dict[str, float] = {}
        #: hot-file accounting, keyed "server:fsid:inum"
        self.hot_files: Dict[str, Dict[str, int]] = {}
        #: executed (non-duplicate) requests per calling host
        self.hot_clients: Dict[str, int] = {}
        #: per-server attribution rollup, keyed by server address
        self.servers: Dict[str, Dict[str, float]] = {}
        #: open queue-wait stamps: id(event) -> (event, frame, kind, t0)
        self._stamps: Dict[int, tuple] = {}

    # -- frames -------------------------------------------------------------

    def frame_begin(self, side: str) -> _Frame:
        frame = _Frame(side, self.sim.now)
        proc = self.sim.current_process
        if proc is not None:
            stack = proc.obs_frames
            if stack is None:
                stack = proc.obs_frames = []
            stack.append(frame)
        return frame

    def frame_end(self, frame: _Frame) -> _Frame:
        frame.t1 = self.sim.now
        proc = self.sim.current_process
        if proc is not None and proc.obs_frames:
            try:
                proc.obs_frames.remove(frame)
            except ValueError:
                pass
        return frame

    def frame_abort(self, frame: _Frame) -> None:
        """Discard a frame without recording (crashed epoch, failed call)."""
        self.frame_end(frame)

    def add(self, kind: str, dt: float) -> None:
        """Contribute ``dt`` seconds of ``kind`` to the innermost frame."""
        self.totals[kind] = self.totals.get(kind, 0.0) + dt
        proc = self.sim.current_process
        if proc is not None:
            stack = proc.obs_frames
            if stack:
                stack[-1].add(kind, dt)

    def attach_server_phases(self, phases: Tuple[float, ...]) -> None:
        """Record the server's piggybacked phase tuple on the open call."""
        proc = self.sim.current_process
        if proc is not None:
            stack = proc.obs_frames
            if stack:
                stack[-1].srv_phases = phases

    # -- queue-wait stamping (called from Resource) -------------------------

    def wait_begin(self, resource, ev) -> None:
        kind = resource.obs_kind
        if kind is None:
            return
        proc = self.sim.current_process
        frame = None
        if proc is not None and proc.obs_frames:
            frame = proc.obs_frames[-1]
        # keep the event itself so id() stays unique while stamped
        self._stamps[id(ev)] = (ev, frame, kind, self.sim.now)

    def wait_end(self, resource, ev) -> None:
        entry = self._stamps.pop(id(ev), None)
        if entry is None:
            return
        _, frame, kind, t0 = entry
        dt = self.sim.now - t0
        cell = self.waits.get(kind)
        if cell is None:
            cell = self.waits[kind] = {"waits": 0, "wait_s": 0.0}
        cell["waits"] += 1
        cell["wait_s"] += dt
        if frame is not None:
            frame.add(kind + ".queue", dt)

    # -- server-side hooks --------------------------------------------------

    def note_request(self, proc_name: str, src: str) -> None:
        """One *executed* (non-duplicate) request from ``src``."""
        self.hot_clients[src] = self.hot_clients.get(src, 0) + 1

    def tag_file(self, key: str, read_bytes: int = 0, write_bytes: int = 0) -> None:
        cell = self.hot_files.get(key)
        if cell is None:
            cell = self.hot_files[key] = {
                "reads": 0, "writes": 0, "bytes_read": 0, "bytes_written": 0,
            }
        if read_bytes or not write_bytes:
            cell["reads"] += 1
            cell["bytes_read"] += read_bytes
        if write_bytes:
            cell["writes"] += 1
            cell["bytes_written"] += write_bytes

    def close_server_frame(self, frame: _Frame) -> Tuple[float, ...]:
        """Close a server frame; returns the (queue, cpu, disk, other,
        wall) tuple the endpoint piggybacks on the reply."""
        self.frame_end(frame)
        acc = frame.acc
        wall = frame.t1 - frame.t0
        queue = acc.get("threads.queue", 0.0) + acc.get("cpu.queue", 0.0)
        cpu = acc.get("cpu.service", 0.0)
        disk = acc.get("disk.queue", 0.0) + acc.get("disk.service", 0.0)
        other = wall - queue - cpu - disk
        return (queue, cpu, disk, other, wall)

    # -- client-side recording ----------------------------------------------

    def record_client_op(
        self, proc_name: str, frame: _Frame, server: Optional[str] = None
    ) -> None:
        """Close a client call frame and fold it into the per-op table.

        ``server`` is the destination address; sharded namespaces spread
        calls over several servers, and the per-server rollup shows which
        machine carried the time."""
        self.frame_end(frame)
        acc = frame.acc
        e2e = frame.t1 - frame.t0
        client_cpu = acc.get("cpu.queue", 0.0) + acc.get("cpu.service", 0.0)
        retrans = acc.get("retrans.wait", 0.0)
        srv = frame.srv_phases or (0.0, 0.0, 0.0, 0.0, 0.0)
        srv_queue, srv_cpu, srv_disk, srv_other, srv_wall = srv
        # the residual: whatever no instrumented phase claims is transit
        net = e2e - client_cpu - retrans - srv_wall
        if net < 0.0 and retrans > 0.0:
            # a deeply negative residual means the retransmit-wait
            # window overlapped server execution (the client timed out
            # while the server was still working; the retransmission
            # hit the duplicate cache).  That overlap is server time,
            # not wasted waiting — move it out of retrans_wait so the
            # phase sum stays an exact identity without double-counting
            give_back = min(retrans, -net)
            retrans -= give_back
            net += give_back
        op = self.ops.get(proc_name)
        if op is None:
            op = self.ops[proc_name] = {
                "count": 0,
                "e2e_s": 0.0,
                "phases": dict.fromkeys(PHASES, 0.0),
                "digest": QuantileDigest(),
            }
        op["count"] += 1
        op["e2e_s"] += e2e
        phases = op["phases"]
        phases["client_cpu"] += client_cpu
        phases["net"] += net
        phases["retrans_wait"] += retrans
        phases["server_queue"] += srv_queue
        phases["server_cpu"] += srv_cpu
        phases["disk"] += srv_disk
        phases["server_other"] += srv_other
        op["digest"].add(e2e)
        if server is not None:
            cell = self.servers.get(server)
            if cell is None:
                cell = self.servers[server] = {
                    "count": 0,
                    "e2e_s": 0.0,
                    "server_queue": 0.0,
                    "server_cpu": 0.0,
                    "disk": 0.0,
                    "server_wall": 0.0,
                }
            cell["count"] += 1
            cell["e2e_s"] += e2e
            cell["server_queue"] += srv_queue
            cell["server_cpu"] += srv_cpu
            cell["disk"] += srv_disk
            cell["server_wall"] += srv_wall

    def record_client_failure(self, proc_name: str, frame: _Frame) -> None:
        self.frame_abort(frame)
        self.failed[proc_name] = self.failed.get(proc_name, 0) + 1

    def __repr__(self) -> str:
        n = sum(op["count"] for op in self.ops.values())
        return "<ObsCollector %d ops over %d procs>" % (n, len(self.ops))
