"""Additional RFS tests: server table behaviour, dead readers, counts."""

import pytest

from repro.fs import OpenMode
from repro.rfs import RPROC
from tests.rfs.test_rfs import RfsWorld, read_file, write_file


@pytest.fixture
def world(runner):
    return RfsWorld(runner)


def test_server_tracks_open_counts(runner, world):
    k0 = world.clients[0].kernel

    def scenario():
        fd1 = yield from k0.open("/data/f", OpenMode.WRITE, create=True)
        fd2 = yield from k0.open("/data/f", OpenMode.READ)
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        entry = world.server._entries.get(key)
        counts_open = dict(entry.open_counts)
        yield from k0.close(fd1)
        yield from k0.close(fd2)
        counts_closed = dict(entry.open_counts)
        return counts_open, counts_closed

    counts_open, counts_closed = runner.run(scenario())
    assert counts_open == {"client0": 2}
    assert counts_closed == {}


def test_no_invalidations_without_sharing(runner, world):
    k0 = world.clients[0].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"solo" * 1024)
        yield from read_file(k0, "/data/f")

    runner.run(scenario())
    assert world.server_host.rpc.client_stats.get(RPROC.INVALIDATE) == 0


def test_dead_reader_forgotten_after_failed_invalidate(runner, world):
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"x" * 4096)
        fd = yield from k1.open("/data/f", OpenMode.READ)
        yield from k1.read(fd, 10)
        # reader dies holding the file open
        world.clients[1].crash()
        # writer updates: the invalidate to the dead reader fails and
        # the server forgets its registration
        yield from write_file(k0, "/data/f", b"y" * 4096)
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        entry = world.server._entries.get(lfs.handle(inum).key())
        return dict(entry.open_counts) if entry else {}

    counts = runner.run(scenario(), limit=10000.0)
    assert "client1" not in counts


def test_write_version_advances_monotonically(runner, world):
    k0 = world.clients[0].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"1" * 4096)
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        v1 = world.server._entries[key].version
        yield from write_file(k0, "/data/f", b"2" * 4096)
        v2 = world.server._entries[key].version
        return v1, v2

    v1, v2 = runner.run(scenario())
    assert v2 > v1


def test_remove_clears_entry(runner, world):
    k0 = world.clients[0].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"z")
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        yield from k0.unlink("/data/f")
        return key

    key = runner.run(scenario())
    assert key not in world.server._entries


def test_rfs_open_close_counts_on_wire(runner, world):
    k0 = world.clients[0].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"x")
        yield from read_file(k0, "/data/f")

    runner.run(scenario())
    assert world.clients[0].rpc.client_stats.get(RPROC.OPEN) == 2
    assert world.clients[0].rpc.client_stats.get(RPROC.CLOSE) == 2
