"""Tests for the RFS-style baseline: consistency without probes."""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.rfs import RPROC, RfsClient, RfsServer


class RfsWorld:
    def __init__(self, runner, n_clients=2):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = RfsServer(self.server_host, self.export)
        self.clients = []
        self.mounts = []
        for i in range(n_clients):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            client = RfsClient("rfs%d" % i, host, "server")
            runner.run(client.attach())
            host.kernel.mount("/data", client)
            self.clients.append(host)
            self.mounts.append(client)


@pytest.fixture
def world(runner):
    return RfsWorld(runner)


def write_file(k, path, data):
    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def read_file(k, path, n=1 << 20):
    fd = yield from k.open(path, OpenMode.READ)
    data = yield from k.read(fd, n)
    yield from k.close(fd)
    return data


def test_roundtrip(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"rfs data")
        data = yield from read_file(k, "/data/f")
        return data

    assert runner.run(scenario()) == b"rfs data"


def test_write_through_like_nfs(runner, world):
    """RFS keeps the NFS write policy: data is on the server at close."""
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x" * 8192)

    runner.run(scenario())
    assert world.clients[0].rpc.client_stats.get(RPROC.WRITE) == 2
    assert world.clients[0].cache.dirty_count() == 0


def test_cache_kept_across_close(runner, world):
    """No invalidate-on-close: rereading after close is free."""
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"w" * 4096)
        before = world.clients[0].rpc.client_stats.get(RPROC.READ)
        data = yield from read_file(k, "/data/f")
        return world.clients[0].rpc.client_stats.get(RPROC.READ) - before, data

    extra, data = runner.run(scenario())
    assert extra == 0
    assert data == b"w" * 4096


def test_no_periodic_probes(runner, world):
    """Readers hold files open for a long time with no getattr traffic:
    the server pushes invalidations instead."""
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"stable" * 10)
        fd = yield from k.open("/data/f", OpenMode.READ)
        for _ in range(10):
            yield runner.sim.timeout(60.0)
            k.lseek(fd, 0)
            yield from k.read(fd, 60)
        yield from k.close(fd)

    runner.run(scenario())
    assert world.clients[0].rpc.client_stats.get(RPROC.GETATTR) <= 1


def test_concurrent_reader_invalidated_on_write(runner, world):
    """The RFS guarantee: a write immediately invalidates open readers,
    so the reader's next read fetches fresh data — no stale window."""
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel
    observations = {}

    def setup():
        yield from write_file(k0, "/data/f", b"old." * 1024)

    def reader():
        fd = yield from k1.open("/data/f", OpenMode.READ)
        data = yield from k1.read(fd, 4096)
        observations["initial"] = bytes(data)
        yield runner.sim.timeout(2.0)
        k1.lseek(fd, 0)
        data = yield from k1.read(fd, 4096)
        observations["after-write"] = bytes(data)
        yield from k1.close(fd)

    def writer():
        yield runner.sim.timeout(1.0)
        fd = yield from k0.open("/data/f", OpenMode.WRITE)
        yield from k0.write(fd, b"NEW!" * 1024)
        yield from k0.close(fd)

    runner.run(setup())
    runner.run_all(reader(), writer())
    assert observations["initial"] == b"old." * 1024
    # 1 second later — far inside NFS's stale window — RFS is correct
    assert observations["after-write"] == b"NEW!" * 1024
    # the server really did push invalidations to the reader
    assert world.server_host.rpc.client_stats.get(RPROC.INVALIDATE) >= 1


def test_version_check_on_reopen(runner, world):
    """Sequential write sharing via version numbers at open."""
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"one" * 1000)
        d1 = yield from read_file(k1, "/data/f")
        yield from write_file(k0, "/data/f", b"two" * 1000)
        d2 = yield from read_file(k1, "/data/f")
        return d1, d2

    d1, d2 = runner.run(scenario())
    assert d1 == b"one" * 1000
    assert d2 == b"two" * 1000


def test_own_writes_do_not_invalidate_own_cache(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"mine" * 1024)
        before = world.clients[0].rpc.client_stats.get(RPROC.READ)
        data = yield from read_file(k, "/data/f")
        return world.clients[0].rpc.client_stats.get(RPROC.READ) - before, data

    extra, data = runner.run(scenario())
    assert extra == 0
    assert data == b"mine" * 1024
