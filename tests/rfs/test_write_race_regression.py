"""Regression: concurrent writers must each learn their *own* version.

The pre-fix ``RfsServer.proc_write`` re-read ``entry.version`` after
yielding on the invalidation RPCs, so two interleaved writers both
returned the *later* writer's version — the earlier writer's cache
then claimed a version covering data it never wrote.  The static
analyzer flags the pattern (ATOM003 on ``entry.version``); this test
reproduces the interleaving, shows SimTSan observes it on the old
body, and pins the fixed behaviour.
"""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network, RpcError
from repro.proto import RemoteFsServer
from repro.rfs import RfsClient, RfsServer


class RecordingRfsServer(RfsServer):
    """The fixed server, recording each write's returned version."""

    def __init__(self, host, export):
        super().__init__(host, export)
        self.returned = []

    def proc_write(self, src, fh, offset, data):
        result, version = yield from super().proc_write(
            src, fh, offset, data
        )
        self.returned.append((src, version))
        return result, version


class BuggyRfsServer(RfsServer):
    """The pre-fix body: version re-read after the invalidation yields,
    instrumented with SimTSan spans so the interleaving is observable."""

    def __init__(self, host, export):
        super().__init__(host, export)
        self.returned = []

    def proc_write(self, src, fh, offset, data):
        result = yield from RemoteFsServer.proc_write(
            self, src, fh, offset, data
        )
        entry = self._entry(fh.key())
        san = self.sim.sanitizer
        span = san.begin("rfs.version", fh.key(), label="proc_write")
        try:
            entry.version = self.next_version()
            san.note_write("rfs.version", fh.key(), "bump")
            for client in list(entry.open_counts):
                if client == src:
                    continue
                try:
                    yield from self.host.rpc.call(
                        client, self.PROC.INVALIDATE, fh, max_retries=2
                    )
                except RpcError:
                    entry.open_counts.pop(client, None)
            final = entry.version  # the stale re-read under test
        finally:
            san.end(span)
        self.returned.append((src, final))
        return result, final


def build_world(runner, server_cls, clients=2):
    sim = runner.sim
    network = Network(sim)
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    server = server_cls(server_host, export)
    kernels = []
    for i in range(clients):
        host = Host(sim, network, "client%d" % i, HostConfig.titan_client())
        client = RfsClient("rfs%d" % i, host, "server")
        runner.run(client.attach())
        host.kernel.mount("/data", client)
        kernels.append(host.kernel)
    return server, kernels, network


def concurrent_writers(runner, server, kernels, network):
    """Both writers hold the file open, and a third client holds it open
    for read behind a network partition: each write's invalidation RPC
    to the unreachable reader keeps its ``proc_write`` suspended through
    the full retransmission window, so the other write's version bump
    lands inside it."""

    def seed(k):
        fd = yield from k.open(
            "/data/f", OpenMode.WRITE, create=True, truncate=True
        )
        yield from k.write(fd, b"seed")
        yield from k.close(fd)

    def open_fd(k):
        fd = yield from k.open("/data/f", OpenMode.WRITE)
        return fd

    def open_reader(k):
        fd = yield from k.open("/data/f", OpenMode.READ)
        return fd

    runner.run(seed(kernels[0]))
    fds = [runner.run(open_fd(k)) for k in kernels[:2]]
    runner.run(open_reader(kernels[2]))
    network.partition("server", "client2")
    server.returned.clear()

    def writer(k, fd, payload):
        yield from k.write(fd, payload)
        yield from k.close(fd)  # drains the async write-through pool

    runner.run_all(
        writer(kernels[0], fds[0], b"a" * 512),
        writer(kernels[1], fds[1], b"b" * 512),
    )


def test_buggy_server_interleaves_and_collides(runner):
    server, kernels, network = build_world(runner, BuggyRfsServer, clients=3)
    san = runner.sim.enable_sanitizer(strict=False)
    concurrent_writers(runner, server, kernels, network)

    races = san.findings_of("write-race")
    assert races, "SimTSan must observe the interleaved version bumps"
    writes = [v for _, v in server.returned]
    assert len(writes) == 2
    # the lost distinction: both writers learned the later version
    assert writes[0] == writes[1]


def test_fixed_server_returns_per_writer_versions(runner):
    server, kernels, network = build_world(runner, RecordingRfsServer, clients=3)
    concurrent_writers(runner, server, kernels, network)

    assert len(server.returned) == 2
    versions = sorted(v for _, v in server.returned)
    assert versions[0] != versions[1], (
        "each writer must learn the version assigned to its own write"
    )
    # and the file ends at the highest assigned version
    (entry,) = server._entries.values()
    assert entry.version == versions[1]


def test_fixed_server_still_invalidates_open_readers(runner):
    # the fix must not regress the RFS guarantee the protocol exists for
    server, kernels, _ = build_world(runner, RecordingRfsServer)
    k0, k1 = kernels
    observations = {}

    def setup():
        fd = yield from k0.open(
            "/data/f", OpenMode.WRITE, create=True, truncate=True
        )
        yield from k0.write(fd, b"old." * 256)
        yield from k0.close(fd)

    def reader():
        fd = yield from k1.open("/data/f", OpenMode.READ)
        first = yield from k1.read(fd, 1024)
        observations["initial"] = bytes(first)
        yield runner.sim.timeout(2.0)
        k1.lseek(fd, 0)
        second = yield from k1.read(fd, 1024)
        observations["after"] = bytes(second)
        yield from k1.close(fd)

    def writer():
        yield runner.sim.timeout(1.0)
        fd = yield from k0.open("/data/f", OpenMode.WRITE)
        yield from k0.write(fd, b"new!" * 256)
        yield from k0.close(fd)

    runner.run(setup())
    runner.run_all(reader(), writer())
    assert observations["initial"] == b"old." * 256
    assert observations["after"] == b"new!" * 256
