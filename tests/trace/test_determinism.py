"""The trace-as-determinism-oracle tests.

Two runs of the same seeded workload must export *byte-identical*
Chrome traces — any divergence means nondeterminism crept into the
scheduler, the RNG plumbing, or the exporters.  A different seed (with
packet loss enabled, so the seed matters) must produce a different
trace.
"""

import pytest

from repro.experiments import run_traced_andrew
from repro.trace import Tracer, chrome_trace_json, trace_digest

DROP = 0.02  # make the run seed-sensitive


@pytest.fixture(autouse=True)
def _drain():
    Tracer.drain_instances()
    yield
    Tracer.drain_instances()


def _trace_bytes(protocol, seed):
    run = run_traced_andrew(protocol, seed=seed, drop_rate=DROP)
    return chrome_trace_json(run.tracer), trace_digest(run.tracer)


def test_snfs_same_seed_is_byte_identical():
    text_a, digest_a = _trace_bytes("snfs", seed=3)
    text_b, digest_b = _trace_bytes("snfs", seed=3)
    assert digest_a == digest_b
    assert text_a == text_b


def test_nfs_same_seed_is_byte_identical():
    text_a, digest_a = _trace_bytes("nfs", seed=3)
    text_b, digest_b = _trace_bytes("nfs", seed=3)
    assert digest_a == digest_b
    assert text_a == text_b


def test_different_seed_produces_different_trace():
    _, digest_a = _trace_bytes("snfs", seed=3)
    _, digest_c = _trace_bytes("snfs", seed=4)
    assert digest_a != digest_c
