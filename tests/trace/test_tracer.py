"""Unit tests for the Tracer: spans, events, context propagation."""

import os

import pytest

from repro.sim import Simulator
from repro.trace import Tracer


@pytest.fixture(autouse=True)
def _drain():
    Tracer.drain_instances()
    yield
    Tracer.drain_instances()


def test_tracing_is_off_by_default():
    sim = Simulator()
    assert sim.tracer is None
    assert sim.metrics is None


def test_repro_trace_env_enables_both(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    sim = Simulator()
    assert sim.tracer is not None
    assert sim.metrics is not None


def test_enable_tracer_registers_instance():
    sim = Simulator()
    tracer = sim.enable_tracer()
    assert tracer is sim.tracer
    assert tracer in Tracer.instances
    drained = Tracer.drain_instances()
    assert tracer in drained
    assert Tracer.instances == []


def test_begin_end_nesting_links_parents(runner):
    tracer = runner.sim.enable_tracer()

    def work():
        outer = tracer.begin("outer", track="h")
        yield runner.sim.timeout(1.0)
        inner = tracer.begin("inner", track="h")
        yield runner.sim.timeout(2.0)
        tracer.end(inner)
        tracer.end(outer)

    runner.run(work())
    outer, inner = tracer.spans
    assert inner.parent == outer.sid
    assert inner.trace == outer.trace
    assert outer.parent == 0
    assert outer.duration() == pytest.approx(3.0)
    assert inner.duration() == pytest.approx(2.0)


def test_end_restores_enclosing_context(runner):
    tracer = runner.sim.enable_tracer()

    def work():
        a = tracer.begin("a")
        b = tracer.begin("b")
        tracer.end(b)
        assert tracer.current_context() == (a.trace, a.sid)
        tracer.end(a)
        assert tracer.current_context() is None
        yield runner.sim.timeout(0)

    runner.run(work())


def test_spawned_child_inherits_context(runner):
    sim = runner.sim
    tracer = sim.enable_tracer()
    child_ctx = {}

    def child():
        child_ctx["ctx"] = tracer.current_context()
        span = tracer.begin("child-op")
        yield sim.timeout(1.0)
        tracer.end(span)

    def parent():
        span = tracer.begin("parent-op")
        proc = sim.spawn(child(), name="kid")
        yield proc
        tracer.end(span)

    runner.run(parent())
    parent_span = next(s for s in tracer.spans if s.name == "parent-op")
    child_span = next(s for s in tracer.spans if s.name == "child-op")
    assert child_ctx["ctx"] == (parent_span.trace, parent_span.sid)
    assert child_span.parent == parent_span.sid
    assert child_span.trace == parent_span.trace


def test_spawn_and_finish_instants_recorded(runner):
    sim = runner.sim
    tracer = sim.enable_tracer()

    def noop():
        yield sim.timeout(0)

    def work():
        yield sim.spawn(noop(), name="kid")

    runner.run(work())
    names = [e.name for e in tracer.events]
    assert "proc.spawn" in names
    assert "proc.finish" in names
    assert any(
        e.args["child"] == "kid" for e in tracer.find_events("proc.spawn")
    )


def test_resume_instants_only_when_enabled(runner):
    tracer = runner.sim.enable_tracer()
    assert not tracer.trace_resumes

    def work():
        yield runner.sim.timeout(1.0)

    runner.run(work())
    assert tracer.find_events("proc.resume") == []


def test_adopt_ships_context_across_processes(runner):
    sim = runner.sim
    tracer = sim.enable_tracer()

    def server(shipped):
        # the spawned process already inherited the caller's context;
        # adopt() re-establishes the *shipped* one (same here) and
        # returns what was in place
        prev = tracer.adopt(shipped)
        assert prev == tuple(shipped)
        span = tracer.begin("serve")
        yield sim.timeout(1.0)
        tracer.end(span)
        tracer.adopt(prev)

    def client():
        span = tracer.begin("call")
        shipped = Tracer.context_of(span)
        yield sim.spawn(server(shipped), name="srv")
        tracer.end(span)

    runner.run(client())
    call = next(s for s in tracer.spans if s.name == "call")
    serve = next(s for s in tracer.spans if s.name == "serve")
    assert serve.parent == call.sid
    assert serve.trace == call.trace


def test_ambient_context_outside_processes():
    sim = Simulator()
    tracer = sim.enable_tracer()
    assert sim.current_process is None
    span = tracer.begin("ambient")
    assert tracer.current_context() == (span.trace, span.sid)
    tracer.end(span)
    assert tracer.current_context() is None


def test_instant_attaches_to_active_span(runner):
    tracer = runner.sim.enable_tracer()

    def work():
        span = tracer.begin("op")
        event = tracer.instant("tick", cat="test", flavor="x")
        assert event.parent == span.sid
        assert event.args == {"flavor": "x"}
        tracer.end(span)
        orphan = tracer.instant("lonely")
        assert orphan.parent == 0
        yield runner.sim.timeout(0)

    runner.run(work())


def test_close_open_spans_stamps_now(runner):
    sim = runner.sim
    tracer = sim.enable_tracer()

    def work():
        tracer.begin("left-open")
        yield sim.timeout(5.0)

    runner.run(work())
    assert tracer.spans[0].t1 is None
    assert tracer.close_open_spans() == 1
    assert tracer.spans[0].t1 == sim.now
    assert tracer.close_open_spans() == 0


def test_ancestors_walks_to_root(runner):
    tracer = runner.sim.enable_tracer()

    def work():
        a = tracer.begin("a")
        b = tracer.begin("b")
        c = tracer.begin("c")
        event = tracer.instant("leaf")
        chain = [s.name for s in tracer.ancestors(event)]
        assert chain == ["c", "b", "a"]
        chain = [s.name for s in tracer.ancestors(c)]
        assert chain == ["b", "a"]
        tracer.end(c)
        tracer.end(b)
        tracer.end(a)
        yield runner.sim.timeout(0)

    runner.run(work())


def test_find_spans_and_events_filter(runner):
    tracer = runner.sim.enable_tracer()

    def work():
        s1 = tracer.begin("rpc.call:read", track="h1")
        tracer.end(s1)
        s2 = tracer.begin("rpc.call:write", track="h2")
        tracer.end(s2)
        tracer.instant("net.drop", track="net")
        yield runner.sim.timeout(0)

    runner.run(work())
    assert len(tracer.find_spans("rpc.call:")) == 2
    assert len(tracer.find_spans("rpc.call:", track="h1")) == 1
    assert len(tracer.find_events("net.")) == 1
    assert tracer.find_events("net.", track="elsewhere") == []


def test_separate_roots_get_separate_traces(runner):
    tracer = runner.sim.enable_tracer()

    def work():
        a = tracer.begin("first-root")
        tracer.end(a)
        b = tracer.begin("second-root")
        tracer.end(b)
        assert a.trace != b.trace
        yield runner.sim.timeout(0)

    runner.run(work())
