"""The acceptance-criterion causal chain, asserted on a real traced run.

A client-1 ``snfs.open`` must be the causal ancestor of (a) the server
state-table transition it triggers and (b) the write-back span the
*victim* client (client 0, which holds dirty delayed writes) performs
in response to the server's callback — one tree spanning three hosts.
"""

import json

import pytest

from repro.experiments import run_traced_andrew
from repro.trace import Tracer, chrome_trace_json, validate_chrome_trace


@pytest.fixture(scope="module")
def snfs_run():
    Tracer.drain_instances()
    run = run_traced_andrew("snfs", seed=1989)
    yield run
    Tracer.drain_instances()


def test_epilogue_actually_read_data(snfs_run):
    assert snfs_run.epilogue_bytes > 0


def test_open_is_ancestor_of_state_transition(snfs_run):
    tracer = snfs_run.tracer
    index = tracer.span_index()
    # the epilogue read hits a CLOSED_DIRTY file: the writer closed it
    # but still holds delayed writes
    dirty_opens = [
        e for e in tracer.find_events("snfs.transition", track="server")
        if e.args["before"] == "CLOSED_DIRTY" and e.args["event"] == "open-read"
    ]
    assert dirty_opens, "no open of a CLOSED_DIRTY file was traced"
    event = dirty_opens[-1]
    chain = list(tracer.ancestors(event, index))
    opens = [
        s for s in chain
        if s.name == "rpc.call:snfs.open" and s.track == "client1"
    ]
    assert opens, "transition is not rooted in client1's open RPC"


def test_open_is_ancestor_of_remote_writeback(snfs_run):
    tracer = snfs_run.tracer
    index = tracer.span_index()
    writebacks = tracer.find_spans("snfs.writeback", track="client0")
    assert writebacks, "the callback never induced a write-back on client0"
    wb = writebacks[-1]
    chain = list(tracer.ancestors(wb, index))
    names_tracks = [(s.name, s.track) for s in chain]
    # ... the server's callback span, served on client0 ...
    assert ("rpc.serve:snfs.callback", "client0") in names_tracks
    assert ("snfs.callback", "server") in names_tracks
    # ... rooted in the *other* client's open
    assert ("rpc.call:snfs.open", "client1") in names_tracks


def test_transition_and_writeback_share_one_trace(snfs_run):
    tracer = snfs_run.tracer
    wb = tracer.find_spans("snfs.writeback", track="client0")[-1]
    opener = next(
        s for s in tracer.ancestors(wb)
        if s.name == "rpc.call:snfs.open" and s.track == "client1"
    )
    dirty = [
        e for e in tracer.find_events("snfs.transition", track="server")
        if e.args["before"] == "CLOSED_DIRTY" and e.trace == wb.trace
    ]
    assert dirty, "transition and write-back are in different traces"
    # the same open span (same sid) roots both branches
    assert any(
        a.sid == opener.sid for e in dirty for a in tracer.ancestors(e)
    )


def test_exported_trace_validates(snfs_run):
    doc = json.loads(chrome_trace_json(snfs_run.tracer))
    assert validate_chrome_trace(doc) == []


def test_nfs_run_has_no_callback_machinery():
    Tracer.drain_instances()
    run = run_traced_andrew("nfs", seed=1989)
    Tracer.drain_instances()
    assert run.epilogue_bytes > 0
    assert run.tracer.find_spans("snfs.callback") == []
    assert run.tracer.find_events("snfs.transition") == []
    # but the plain RPC machinery is traced
    assert run.tracer.find_spans("rpc.call:nfs.read")
