"""Tests for the Chrome-trace / flamegraph / run-report exporters."""

import json

import pytest

from repro.sim import Simulator
from repro.trace import (
    Tracer,
    chrome_trace,
    chrome_trace_json,
    collapsed_stacks,
    flamegraph_report,
    run_report,
    trace_digest,
    validate_chrome_trace,
    write_chrome_trace,
    write_run_report,
)


@pytest.fixture(autouse=True)
def _drain():
    Tracer.drain_instances()
    yield
    Tracer.drain_instances()


def _sample_tracer(runner):
    """A tiny two-track trace with a cross-track parent edge."""
    sim = runner.sim
    tracer = sim.enable_tracer()

    def serve(shipped):
        tracer.adopt(shipped)
        span = tracer.begin("rpc.serve:read", cat="rpc", track="server")
        yield sim.timeout(2.0)
        tracer.end(span)
        tracer.adopt(None)

    def client():
        span = tracer.begin("rpc.call:read", cat="rpc", track="client")
        tracer.instant("net.xmit", cat="net", track="net", size=128)
        yield sim.spawn(serve(Tracer.context_of(span)), name="srv")
        tracer.end(span)

    runner.run(client())
    return tracer


def test_chrome_trace_structure(runner):
    tracer = _sample_tracer(runner)
    doc = chrome_trace(tracer)
    events = doc["traceEvents"]
    phases = [e["ph"] for e in events]
    assert "M" in phases and "X" in phases and "i" in phases
    # one process row per track, named
    meta = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
    # "sim" holds the proc.spawn/finish instants of the driver processes
    assert sorted(m["args"]["name"] for m in meta) == ["client", "net", "server", "sim"]
    # spans carry causal ids in args
    xs = {e["name"]: e for e in events if e["ph"] == "X"}
    call, serve = xs["rpc.call:read"], xs["rpc.serve:read"]
    assert serve["args"]["parent"] == call["args"]["sid"]
    assert call["pid"] != serve["pid"]
    assert serve["dur"] == pytest.approx(2e6)


def test_cross_track_edges_become_flow_arrows(runner):
    tracer = _sample_tracer(runner)
    events = chrome_trace(tracer)["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]


def test_validate_accepts_our_output(runner):
    tracer = _sample_tracer(runner)
    doc = json.loads(chrome_trace_json(tracer))
    assert validate_chrome_trace(doc) == []


def test_validate_rejects_malformed_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"nope": 1}) != []
    bad = {"traceEvents": [
        {"ph": "Z", "name": "x", "ts": 0, "pid": 1, "tid": 1},
        {"ph": "X", "name": "x", "ts": -1, "pid": 1, "tid": 1},
        {"ph": "X", "name": "x", "ts": 0, "pid": 1, "tid": 1},   # no dur
        {"ph": "i", "name": "x", "ts": 0, "pid": 1, "tid": 1},   # no scope
        {"ph": "s", "name": "x", "ts": 0, "pid": 1, "tid": 1},   # no id
        "not-an-object",
    ]}
    problems = validate_chrome_trace(bad)
    # the ts=-1 X event is doubly wrong (negative ts AND missing dur)
    assert len(problems) == 7


def test_chrome_trace_json_is_canonical(runner):
    tracer = _sample_tracer(runner)
    a = chrome_trace_json(tracer)
    b = chrome_trace_json(tracer)
    assert a == b
    assert trace_digest(tracer) == trace_digest(tracer)
    # canonical form: no whitespace, sorted keys
    assert ": " not in a


def test_write_chrome_trace_roundtrips(runner, tmp_path):
    tracer = _sample_tracer(runner)
    path = write_chrome_trace(tracer, str(tmp_path / "t.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert validate_chrome_trace(doc) == []


def test_collapsed_stacks_self_time(runner):
    sim = runner.sim
    tracer = sim.enable_tracer()

    def work():
        outer = tracer.begin("outer")
        yield sim.timeout(1.0)
        inner = tracer.begin("inner")
        yield sim.timeout(3.0)
        tracer.end(inner)
        yield sim.timeout(1.0)
        tracer.end(outer)

    runner.run(work())
    stacks = collapsed_stacks(tracer)
    # outer: 5s total - 3s child = 2s self; inner: 3s self
    assert stacks["outer"] == pytest.approx(2e6)
    assert stacks["outer;inner"] == pytest.approx(3e6)


def test_flamegraph_report_readable(runner):
    tracer = _sample_tracer(runner)
    text = flamegraph_report(tracer)
    assert "flamegraph" in text
    assert "rpc.call:read" in text
    assert text.endswith("total\n")


def test_run_report_contents(runner):
    tracer = _sample_tracer(runner)
    metrics = runner.sim.enable_metrics()
    metrics.counter("rpc.retrans").inc(proc="read")
    report = run_report(tracer, metrics=metrics, meta={"seed": 7})
    assert report["n_spans"] == 2
    assert report["spans"]["rpc.serve:read"]["count"] == 1
    assert report["events"]["net.xmit"] == 1
    assert set(report["track_busy_s"]) == {"client", "server"}
    assert report["meta"] == {"seed": 7}
    assert report["metrics"]["rpc.retrans"]["kind"] == "counter"
    assert len(report["trace_digest"]) == 64


def test_write_run_report_is_json(runner, tmp_path):
    tracer = _sample_tracer(runner)
    path = write_run_report(run_report(tracer), str(tmp_path / "r.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["n_spans"] == 2


def test_empty_tracer_exports_cleanly():
    sim = Simulator()
    tracer = sim.enable_tracer()
    doc = chrome_trace(tracer)
    assert validate_chrome_trace(doc) == []
    assert collapsed_stacks(tracer) == {}
    assert run_report(tracer)["n_spans"] == 0
