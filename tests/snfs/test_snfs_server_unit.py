"""Direct RPC-level tests of the SNFS server (no kernel layer)."""

import pytest

from repro.fs import NoSuchFile, StaleHandle
from repro.host import Host, HostConfig
from repro.net import Network, RpcEndpoint
from repro.snfs import SPROC, FileState, SnfsServer, StateTableFull
from repro.snfs.server import OpenReply


class RawWorld:
    """A server plus bare RPC endpoints posing as clients."""

    def __init__(self, runner, n_clients=2, max_open_files=1000, threads=8):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        cfg = HostConfig.titan_server()
        cfg.rpc_server_threads = threads
        self.server_host = Host(sim, self.network, "server", cfg)
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = SnfsServer(
            self.server_host, self.export, max_open_files=max_open_files
        )
        self.clients = [
            RpcEndpoint(sim, self.network, "raw%d" % i) for i in range(n_clients)
        ]
        for client in self.clients:
            client.register(SPROC.CALLBACK, self._noop_callback(client))
        self.callback_log = []

    def _noop_callback(self, client):
        def handler(src, fh, writeback, invalidate):
            self.callback_log.append((client.address, writeback, invalidate))
            yield self.runner.sim.timeout(0.001)
            return None

        return handler

    def call(self, i, proc, *args):
        return self.runner.run(self.clients[i].call("server", proc, *args))

    def root_fh(self):
        fh, _attr = self.call(0, SPROC.MNT)
        return fh


@pytest.fixture
def world(runner):
    return RawWorld(runner)


def make_file(world, name="f"):
    root = world.root_fh()
    fh, _attr = world.call(0, SPROC.CREATE, root, name)
    return fh


def test_open_returns_structured_reply(world):
    fh = make_file(world)
    reply = OpenReply(*world.call(0, SPROC.OPEN, fh, True))
    assert reply.cache_enabled is True
    assert reply.version > 0
    assert reply.attr.size == 0
    assert reply.inconsistent is False


def test_open_stale_handle_rejected(runner, world):
    fh = make_file(world)
    root = world.root_fh()
    world.call(0, SPROC.REMOVE, root, "f")
    with pytest.raises(StaleHandle):
        world.call(0, SPROC.OPEN, fh, False)


def test_close_without_open_tolerated(world):
    fh = make_file(world)
    assert world.call(0, SPROC.CLOSE, fh, False) is None


def test_duplicate_close_is_harmless(world):
    fh = make_file(world)
    world.call(0, SPROC.OPEN, fh, True)
    world.call(0, SPROC.CLOSE, fh, True)
    world.call(0, SPROC.CLOSE, fh, True)  # extra close: no crash
    assert world.server.state.state_of(fh.key()) in (
        FileState.CLOSED,
        FileState.CLOSED_DIRTY,
    )


def test_state_table_full_without_reclaimables_errors(runner):
    world = RawWorld(runner, max_open_files=2)
    root = world.root_fh()
    for name in ("a", "b"):
        fh, _ = world.call(0, SPROC.CREATE, root, name)
        world.call(0, SPROC.OPEN, fh, False)  # held open: not reclaimable
    fh, _ = world.call(0, SPROC.CREATE, root, "c")
    with pytest.raises(StateTableFull):
        world.call(0, SPROC.OPEN, fh, False)


def test_open_write_by_second_client_issues_callback(world):
    fh = make_file(world)
    world.call(0, SPROC.OPEN, fh, True)
    world.call(0, SPROC.CLOSE, fh, True)  # CLOSED_DIRTY, raw0 last writer
    reply = OpenReply(*world.call(1, SPROC.OPEN, fh, True))
    assert world.callback_log == [("raw0", True, True)]
    assert reply.cache_enabled  # sole writer now


def test_callback_slots_respect_n_minus_1(runner):
    """With T server threads, at most T-1 callbacks run concurrently
    (§3.2's deadlock-avoidance rule)."""
    world = RawWorld(runner, n_clients=6, threads=4)
    sim = runner.sim
    active = []
    peak = [0]

    # slow callbacks so several opens pile up
    for client in world.clients:
        client._handlers[SPROC.CALLBACK] = _slow_callback(sim, active, peak)

    root = world.root_fh()
    # make 5 files CLOSED_DIRTY, one per client
    fhs = []
    for i in range(5):
        fh, _ = world.call(i, SPROC.CREATE, root, "f%d" % i)
        world.call(i, SPROC.OPEN, fh, True)
        world.call(i, SPROC.CLOSE, fh, True)
        fhs.append(fh)

    # client 5 opens all of them for write concurrently: each open
    # triggers a callback to the dirty client
    def opener(fh):
        result = yield from world.clients[5].call("server", SPROC.OPEN, fh, True)
        return result

    runner.run_all(*[opener(fh) for fh in fhs])
    assert peak[0] <= 3  # threads(4) - 1


def _slow_callback(sim, active, peak):
    def handler(src, fh, writeback, invalidate):
        active.append(1)
        peak[0] = max(peak[0], len(active))
        yield sim.timeout(0.5)
        active.pop()
        return None

    return handler


def test_remove_during_open_file_clears_state(world):
    fh = make_file(world)
    world.call(0, SPROC.OPEN, fh, True)
    root = world.root_fh()
    world.call(0, SPROC.REMOVE, root, "f")
    assert world.server.state.entry(fh.key()) is None


def test_reopen_after_clean_close_preserves_version(world):
    """The version memory: a fully-closed file's version survives entry
    reclamation, so caches stay valid across reopen."""
    fh = make_file(world)
    r1 = OpenReply(*world.call(0, SPROC.OPEN, fh, False))
    world.call(0, SPROC.CLOSE, fh, False)
    assert world.server.state.entry(fh.key()) is None  # entry dropped
    r2 = OpenReply(*world.call(0, SPROC.OPEN, fh, False))
    assert r2.version == r1.version
