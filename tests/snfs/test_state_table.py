"""Exhaustive tests of the SNFS server state table against Table 4-1.

Pure state-machine tests: every row of the paper's transition table,
plus the no-transition cases the caption calls out, plus version-number
semantics, the entry limit, reclamation, and the recovery rebuild path.
"""

import pytest

from repro.snfs.state_table import (
    Callback,
    ENTRY_BYTES,
    FileState,
    StateTable,
    StateTableFull,
)

F = "file-1"
A, B, C = "clientA", "clientB", "clientC"


@pytest.fixture
def table():
    return StateTable(max_entries=100)


def opened(table, client, write=False, key=F):
    grant, callbacks = table.open_file(key, client, write)
    return grant, callbacks


# -- open transitions, row by row ------------------------------------------------


def test_closed_open_read_becomes_one_reader(table):
    grant, cbs = opened(table, A)
    assert table.state_of(F) is FileState.ONE_READER
    assert grant.cache_enabled
    assert cbs == []


def test_closed_open_write_becomes_one_writer(table):
    grant, cbs = opened(table, A, write=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    assert grant.cache_enabled
    assert cbs == []


def test_one_reader_second_reader_mult_readers(table):
    opened(table, A)
    grant, cbs = opened(table, B)
    assert table.state_of(F) is FileState.MULT_READERS
    assert grant.cache_enabled
    assert cbs == []


def test_one_reader_same_client_write_one_writer(table):
    opened(table, A)
    grant, cbs = opened(table, A, write=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    assert grant.cache_enabled
    assert cbs == []


def test_one_reader_other_client_write_write_shared(table):
    opened(table, A)
    grant, cbs = opened(table, B, write=True)
    assert table.state_of(F) is FileState.WRITE_SHARED
    assert not grant.cache_enabled
    assert cbs == [Callback(A, writeback=False, invalidate=True)]


def test_mult_readers_writer_invalidates_all_other_readers(table):
    opened(table, A)
    opened(table, B)
    grant, cbs = opened(table, C, write=True)
    assert table.state_of(F) is FileState.WRITE_SHARED
    assert not grant.cache_enabled
    assert sorted(cb.client for cb in cbs) == [A, B]
    assert all(cb.invalidate and not cb.writeback for cb in cbs)


def test_mult_readers_one_of_them_writes(table):
    opened(table, A)
    opened(table, B)
    grant, cbs = opened(table, B, write=True)
    assert table.state_of(F) is FileState.WRITE_SHARED
    # only A is called back; B is the writer itself
    assert [cb.client for cb in cbs] == [A]


def test_one_writer_reader_arrives_write_shared_with_writeback(table):
    opened(table, A, write=True)
    grant, cbs = opened(table, B)
    assert table.state_of(F) is FileState.WRITE_SHARED
    assert not grant.cache_enabled
    assert cbs == [Callback(A, writeback=True, invalidate=True)]


def test_one_writer_second_writer_write_shared(table):
    opened(table, A, write=True)
    grant, cbs = opened(table, B, write=True)
    assert table.state_of(F) is FileState.WRITE_SHARED
    assert cbs == [Callback(A, writeback=True, invalidate=True)]


# -- no-transition cases (table caption) ------------------------------------------


def test_reader_reopening_read_only_no_transition(table):
    opened(table, A)
    grant, cbs = opened(table, A)
    assert table.state_of(F) is FileState.ONE_READER
    assert cbs == []


def test_writer_reopening_any_mode_no_transition(table):
    opened(table, A, write=True)
    for write in (False, True):
        grant, cbs = opened(table, A, write=write)
        assert table.state_of(F) is FileState.ONE_WRITER
        assert cbs == []


# -- close transitions -----------------------------------------------------------


def test_one_reader_final_close_entry_removed(table):
    opened(table, A)
    table.close_file(F, A, write=False)
    assert table.state_of(F) is FileState.CLOSED
    assert table.entry(F) is None  # CLOSED entries are not kept


def test_mult_readers_closes_step_down(table):
    opened(table, A)
    opened(table, B)
    opened(table, C)
    table.close_file(F, C, write=False)
    assert table.state_of(F) is FileState.MULT_READERS
    table.close_file(F, B, write=False)
    assert table.state_of(F) is FileState.ONE_READER
    table.close_file(F, A, write=False)
    assert table.state_of(F) is FileState.CLOSED


def test_one_writer_final_close_closed_dirty_records_last_writer(table):
    opened(table, A, write=True)
    table.close_file(F, A, write=True)
    assert table.state_of(F) is FileState.CLOSED_DIRTY
    assert table.entry(F).last_writer == A


def test_one_writer_close_write_still_reading_one_rdr_dirty(table):
    """Table 4-1: 'Final close for write, client still reading' ->
    ONE_RDR_DIRTY, this client recorded as last writer."""
    opened(table, A)
    opened(table, A, write=True)
    table.close_file(F, A, write=True)
    assert table.state_of(F) is FileState.ONE_RDR_DIRTY
    assert table.entry(F).last_writer == A
    table.close_file(F, A, write=False)
    assert table.state_of(F) is FileState.CLOSED_DIRTY


def test_write_shared_drains_to_one_writer_then_closed(table):
    opened(table, A, write=True)
    opened(table, B, write=True)
    table.close_file(F, A, write=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    table.close_file(F, B, write=True)
    # while write-shared everyone wrote through: nothing dirty remains
    assert table.state_of(F) is FileState.CLOSED
    assert table.entry(F) is None


def test_write_shared_drains_to_one_reader(table):
    opened(table, A)
    opened(table, B, write=True)
    table.close_file(F, B, write=True)
    assert table.state_of(F) is FileState.ONE_READER


def test_close_unknown_file_tolerated(table):
    assert table.close_file("nonesuch", A, write=False) == []


# -- CLOSED_DIRTY transitions ---------------------------------------------------


def make_closed_dirty(table):
    opened(table, A, write=True)
    table.close_file(F, A, write=True)
    assert table.state_of(F) is FileState.CLOSED_DIRTY


def test_closed_dirty_reopen_by_last_writer_read(table):
    make_closed_dirty(table)
    grant, cbs = opened(table, A)
    assert table.state_of(F) is FileState.ONE_RDR_DIRTY
    assert cbs == []  # its own dirty blocks are fine
    assert grant.cache_enabled


def test_closed_dirty_reopen_by_last_writer_write(table):
    make_closed_dirty(table)
    grant, cbs = opened(table, A, write=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    assert cbs == []


def test_closed_dirty_new_reader_forces_writeback_only(table):
    make_closed_dirty(table)
    grant, cbs = opened(table, B)
    assert table.state_of(F) is FileState.ONE_READER
    assert cbs == [Callback(A, writeback=True, invalidate=False)]
    assert grant.cache_enabled


def test_closed_dirty_new_writer_forces_writeback_and_invalidate(table):
    make_closed_dirty(table)
    grant, cbs = opened(table, B, write=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    assert cbs == [Callback(A, writeback=True, invalidate=True)]


def test_one_rdr_dirty_new_reader_writeback(table):
    make_closed_dirty(table)
    opened(table, A)  # ONE_RDR_DIRTY
    grant, cbs = opened(table, B)
    assert table.state_of(F) is FileState.MULT_READERS
    assert cbs == [Callback(A, writeback=True, invalidate=False)]


def test_one_rdr_dirty_new_writer_writeback_invalidate(table):
    make_closed_dirty(table)
    opened(table, A)
    grant, cbs = opened(table, B, write=True)
    assert table.state_of(F) is FileState.WRITE_SHARED
    assert cbs == [Callback(A, writeback=True, invalidate=True)]
    assert not grant.cache_enabled


def test_one_rdr_dirty_same_client_write_one_writer(table):
    make_closed_dirty(table)
    opened(table, A)
    grant, cbs = opened(table, A, write=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    assert cbs == []


# -- version numbers ----------------------------------------------------------


def test_version_increases_on_every_write_open(table):
    g1, _ = opened(table, A, write=True)
    g2, _ = opened(table, A, write=True)
    assert g2.version > g1.version
    assert g2.prev_version == g1.version


def test_read_open_does_not_bump_version(table):
    g1, _ = opened(table, A, write=True)
    table.close_file(F, A, write=True)
    g2, _ = opened(table, A)
    assert g2.version == g1.version


def test_prev_version_lets_writer_keep_cache(table):
    """A client whose cache matches prev_version opened-for-write: the
    version change is its own doing, so the cache stays valid."""
    g1, _ = opened(table, A, write=True)
    table.close_file(F, A, write=True)
    g2, _ = opened(table, A, write=True)
    assert g2.prev_version == g1.version  # cache tagged g1.version is valid


def test_versions_global_across_files(table):
    ga, _ = table.open_file("f1", A, True)
    gb, _ = table.open_file("f2", A, True)
    assert gb.version > ga.version  # global counter (§4.3.3)


# -- table limits and reclamation ----------------------------------------------


def test_entry_limit_enforced():
    table = StateTable(max_entries=2)
    table.open_file("f1", A, False)
    table.open_file("f2", A, False)
    with pytest.raises(StateTableFull):
        table.open_file("f3", A, False)


def test_memory_accounting_matches_paper():
    table = StateTable()
    table.open_file("f1", A, False)
    assert table.memory_bytes() == ENTRY_BYTES
    # "up to 1000 simultaneously open files ... about 70 kbytes"
    assert 1000 * ENTRY_BYTES == pytest.approx(70_000, rel=0.05)


def test_reclaim_picks_closed_dirty_entries(table):
    make_closed_dirty(table)
    pairs = table.reclaim_callbacks()
    assert len(pairs) == 1
    key, cb = pairs[0]
    assert key == F
    assert cb.client == A
    assert cb.writeback
    table.drop(key)
    assert table.entry(F) is None


def test_note_file_removed_drops_state(table):
    make_closed_dirty(table)
    table.note_file_removed(F)
    assert table.state_of(F) is FileState.CLOSED


# -- crash recovery rebuild ------------------------------------------------------


def test_rebuild_single_writer(table):
    table.open_file(F, A, True)
    version = table.entry(F).version
    table.clear()
    assert len(table) == 0
    table.rebuild_entry(F, A, readers=0, writers=1, version=version, dirty=True)
    assert table.state_of(F) is FileState.ONE_WRITER
    assert table.entry(F).version == version


def test_rebuild_multiple_readers(table):
    table.clear()
    table.rebuild_entry(F, A, readers=1, writers=0, version=5, dirty=False)
    table.rebuild_entry(F, B, readers=1, writers=0, version=5, dirty=False)
    assert table.state_of(F) is FileState.MULT_READERS


def test_rebuild_write_shared(table):
    table.rebuild_entry(F, A, readers=1, writers=0, version=7, dirty=False)
    table.rebuild_entry(F, B, readers=0, writers=1, version=8, dirty=False)
    assert table.state_of(F) is FileState.WRITE_SHARED


def test_rebuild_closed_dirty(table):
    table.rebuild_entry(F, A, readers=0, writers=0, version=3, dirty=True)
    assert table.state_of(F) is FileState.CLOSED_DIRTY
    assert table.entry(F).last_writer == A


def test_rebuild_version_counter_continues_past_recovered(table):
    table.rebuild_entry(F, A, readers=0, writers=1, version=100, dirty=True)
    grant, _ = table.open_file("other", B, True)
    assert grant.version > 100


# -- full lifecycle sweep ---------------------------------------------------------


def test_randomized_lifecycle_invariants():
    """Drive many random open/close sequences; invariants must hold:
    WRITE_SHARED iff (writers >= 1 and clients >= 2), etc."""
    import random

    rng = random.Random(42)
    table = StateTable(max_entries=1000)
    open_tracker = {}  # (key, client) -> [reads, writes]
    clients = [A, B, C]
    keys = ["f1", "f2", "f3"]
    for step in range(3000):
        key = rng.choice(keys)
        client = rng.choice(clients)
        write = rng.random() < 0.4
        track = open_tracker.setdefault((key, client), [0, 0])
        if rng.random() < 0.5:
            table.open_file(key, client, write)
            track[1 if write else 0] += 1
        else:
            if write and track[1] > 0:
                table.close_file(key, client, True)
                track[1] -= 1
            elif not write and track[0] > 0:
                table.close_file(key, client, False)
                track[0] -= 1
            else:
                continue
        # check invariants for this key
        entry = table.entry(key)
        n_open = sum(
            1
            for c in clients
            if sum(open_tracker.get((key, c), [0, 0])) > 0
        )
        n_writers = sum(
            1 for c in clients if open_tracker.get((key, c), [0, 0])[1] > 0
        )
        state = table.state_of(key)
        if n_writers >= 1 and n_open >= 2:
            assert state is FileState.WRITE_SHARED, "step %d" % step
        elif n_writers == 1:
            assert state is FileState.ONE_WRITER, "step %d" % step
        elif n_open >= 2:
            assert state is FileState.MULT_READERS, "step %d" % step
        elif n_open == 1:
            assert state in (FileState.ONE_READER, FileState.ONE_RDR_DIRTY)
        else:
            assert state in (FileState.CLOSED, FileState.CLOSED_DIRTY)
