"""State-table reclaim under pressure: real workloads with a tiny table.

§4.3.1 limits the table size and reclaims CLOSED_DIRTY entries via
write-back callbacks.  Here the sort benchmark runs against a server
whose table holds only a handful of entries, forcing constant reclaim
churn — correctness must be unaffected.
"""

import pytest

from repro.experiments import run_sort
from repro.fs import OpenMode
from tests.snfs.conftest import SnfsWorld, read_file, write_file


def test_sort_correct_with_tiny_state_table():
    run = run_sort(
        "snfs",
        input_bytes=256 * 1024,
        sort_config=None,
        client_config=None,
        verify_output=True,
    )
    assert run.output_ok


def test_many_dirty_files_with_tiny_table(runner):
    world = SnfsWorld(runner, max_open_files=4)
    k = world.client.kernel

    def scenario():
        # far more dirty files than table entries: every new open must
        # reclaim an older CLOSED_DIRTY entry via a write-back callback
        for i in range(20):
            yield from write_file(k, "/data/f%d" % i, bytes([65 + i % 26]) * 4096)
        # all files still read back correctly
        for i in range(20):
            data = yield from read_file(k, "/data/f%d" % i)
            assert data == bytes([65 + i % 26]) * 4096, i
        return len(world.server.state)

    entries = runner.run(scenario())
    assert entries <= 4
    # reclamation really happened
    from repro.snfs import SPROC

    assert world.server_host.rpc.client_stats.get(SPROC.CALLBACK) > 0
    assert world.client_rpc_count(SPROC.WRITE) > 0
    assert world.export.lfs.check() == []


def test_reclaimed_files_keep_cache_validity(runner):
    """A file whose entry was reclaimed still revalidates correctly on
    reopen (the version memory preserves its version)."""
    world = SnfsWorld(runner, max_open_files=3)
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/keeper", b"K" * 4096)
        # push enough other files through to force keeper's reclaim
        for i in range(6):
            yield from write_file(k, "/data/filler%d" % i, b"f" * 4096)
        from repro.snfs import SPROC

        before = world.client_rpc_count(SPROC.READ)
        data = yield from read_file(k, "/data/keeper")
        return data, world.client_rpc_count(SPROC.READ) - before

    data, extra_reads = runner.run(scenario())
    assert data == b"K" * 4096
    # keeper's blocks were still cached and still valid: no re-reads
    assert extra_reads == 0
