"""SNFS test fixtures."""

import pytest

from repro.host import Host, HostConfig
from repro.net import Network
from repro.snfs import SnfsClient, SnfsClientConfig, SnfsServer


class SnfsWorld:
    """A server exporting /export plus client hosts mounting it at /data."""

    def __init__(self, runner, n_clients=1, client_config=None, max_open_files=1000):
        self.runner = runner
        sim = runner.sim
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = SnfsServer(
            self.server_host, self.export, max_open_files=max_open_files
        )
        self.clients = []
        self.mounts = []
        for i in range(n_clients):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            client = SnfsClient(
                "snfs%d" % i,
                host,
                "server",
                config=client_config or SnfsClientConfig(),
            )
            runner.run(client.attach())
            host.kernel.mount("/data", client)
            self.clients.append(host)
            self.mounts.append(client)

    @property
    def client(self):
        return self.clients[0]

    @property
    def mount(self):
        return self.mounts[0]

    def client_rpc_count(self, proc, i=0):
        return self.clients[i].rpc.client_stats.get(proc)

    def server_disk(self):
        return self.export.lfs.disk


@pytest.fixture
def world(runner):
    return SnfsWorld(runner)


@pytest.fixture
def world2(runner):
    return SnfsWorld(runner, n_clients=2)


def write_file(k, path, data):
    from repro.fs import OpenMode

    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def read_file(k, path, n=1 << 22):
    from repro.fs import OpenMode

    fd = yield from k.open(path, OpenMode.READ)
    data = yield from k.read(fd, n)
    yield from k.close(fd)
    return data
