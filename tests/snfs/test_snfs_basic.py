"""End-to-end SNFS tests: delayed writes, cache retention, cancellation."""

import pytest

from repro.fs import OpenMode
from repro.snfs import SPROC, FileState
from tests.snfs.conftest import read_file, write_file


def test_roundtrip(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"spritely bytes")
        data = yield from read_file(k, "/data/f")
        return data

    assert runner.run(scenario()) == b"spritely bytes"


def test_open_and_close_rpcs_issued(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x")
        yield from read_file(k, "/data/f")

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.OPEN) == 2
    assert world.client_rpc_count(SPROC.CLOSE) == 2


def test_writes_are_delayed_not_written_through(runner, world):
    """The core SNFS win: close does not flush; no write RPCs at all."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"d" * 4096 * 4)

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.WRITE) == 0
    assert world.client.cache.dirty_count() == 4


def test_update_sync_flushes_delayed_writes(runner, world):
    k = world.client.kernel
    world.client.update_daemon.start()

    def scenario():
        yield from write_file(k, "/data/f", b"d" * 4096 * 2)
        yield runner.sim.timeout(35.0)

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.WRITE) == 2
    assert world.client.cache.dirty_count() == 0
    # the data is genuinely on the server now
    lfs = world.export.lfs
    inum = runner.run(lfs.lookup(lfs.root_inum, "f"))
    assert lfs._attr(inum).size == 8192


def test_fsync_forces_writeback(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"must-persist")
        yield from k.fsync(fd)
        yield from k.close(fd)

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.WRITE) == 1


def test_cache_survives_close_no_rereads(runner, world):
    """Write, close, reopen, read: all from the client cache (the very
    pattern the NFS invalidate-on-close bug penalizes, §5.2)."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"w" * 4096)
        before = world.client_rpc_count(SPROC.READ)
        data = yield from read_file(k, "/data/f")
        return world.client_rpc_count(SPROC.READ) - before, data

    extra_reads, data = runner.run(scenario())
    assert extra_reads == 0
    assert data == b"w" * 4096


def test_delete_before_writeback_cancels_all_writes(runner, world):
    """Temporary-file pattern: create, write, close, delete within the
    write-delay window -> the data never crosses the network (§4.2.3)."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/tmp1", b"t" * 4096 * 8)
        yield from k.unlink("/data/tmp1")

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.WRITE) == 0
    assert world.client.cache.stats.get("cancelled_writes") == 8
    assert world.client.cache.dirty_count() == 0


def test_no_attribute_probes_for_cachable_files(runner, world):
    """Unlike NFS, a cachable file's attributes need no refresh: hold a
    file open for a long time, reading periodically — zero getattrs."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"stable" * 100)
        fd = yield from k.open("/data/f", OpenMode.READ)
        for _ in range(20):
            yield runner.sim.timeout(30.0)
            k.lseek(fd, 0)
            yield from k.read(fd, 100)
        yield from k.close(fd)

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.GETATTR) == 0


def test_version_match_keeps_cache_across_writer_reopen(runner, world):
    """Reopening for write: the version bumped, but it matches the
    previous version -> the cache is still valid (§3.1)."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"v1" * 2048)
        before = world.client_rpc_count(SPROC.READ)
        fd = yield from k.open("/data/f", OpenMode.WRITE)
        data = yield from k.read(fd, 4096)
        yield from k.close(fd)
        return world.client_rpc_count(SPROC.READ) - before, data

    extra_reads, data = runner.run(scenario())
    assert extra_reads == 0
    assert data == b"v1" * 2048


def test_server_state_tracks_open_files(runner, world):
    k = world.client.kernel
    states = []

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"z")
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        states.append(world.server.state.state_of(key))
        yield from k.close(fd)
        states.append(world.server.state.state_of(key))
        return key

    runner.run(scenario())
    assert states == [FileState.ONE_WRITER, FileState.CLOSED_DIRTY]


def test_remove_clears_server_state(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"z")
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        assert world.server.state.state_of(key) is FileState.CLOSED_DIRTY
        yield from k.unlink("/data/f")
        return key

    key = runner.run(scenario())
    assert world.server.state.entry(key) is None


def test_truncate_cancels_stale_dirty_blocks(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"A" * 8192)
        yield from k.truncate("/data/f", 0)
        yield from write_file(k, "/data/f", b"B" * 10)
        data = yield from read_file(k, "/data/f")
        return data

    assert runner.run(scenario()) == b"B" * 10


def test_mkdir_rmdir_rename_over_snfs(runner, world):
    k = world.client.kernel

    def scenario():
        yield from k.mkdir("/data/d")
        yield from write_file(k, "/data/d/a", b"zz")
        yield from k.rename("/data/d/a", "/data/d/b")
        names = yield from k.readdir("/data/d")
        yield from k.unlink("/data/d/b")
        yield from k.rmdir("/data/d")
        return names

    assert runner.run(scenario()) == ["b"]


def test_rename_replacing_file_cancels_victim(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/victim", b"old" * 2000)
        yield from write_file(k, "/data/src", b"new")
        yield from k.rename("/data/src", "/data/victim")
        data = yield from read_file(k, "/data/victim")
        return data

    assert runner.run(scenario()) == b"new"
    assert world.client.cache.stats.get("cancelled_writes") >= 1
