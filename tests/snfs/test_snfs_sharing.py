"""Two-client SNFS tests: callbacks, write-sharing, guaranteed consistency."""

import pytest

from repro.fs import OpenMode
from repro.snfs import SPROC, FileState
from tests.snfs.conftest import SnfsWorld, read_file, write_file


def file_key(world, name):
    lfs = world.export.lfs
    inum = world.runner.run(lfs.lookup(lfs.root_inum, name))
    return lfs.handle(inum).key()


def test_new_reader_triggers_writeback_callback(runner, world2):
    """Client 0 writes and closes (CLOSED_DIRTY); client 1 opens for
    read: the server calls back client 0 for the dirty blocks *before*
    answering, so client 1 reads fresh data (§2.2)."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"dirty-data" * 400)
        assert world2.clients[0].cache.dirty_count() > 0
        data = yield from read_file(k1, "/data/f")
        return data

    data = runner.run(scenario())
    assert data == b"dirty-data" * 400
    # the server issued exactly one callback, and client 0 wrote back
    assert world2.server_host.rpc.client_stats.get(SPROC.CALLBACK) == 1
    assert world2.client_rpc_count(SPROC.WRITE, i=0) > 0
    assert world2.clients[0].cache.dirty_count() == 0


def test_writeback_callback_does_not_invalidate_writers_cache(runner, world2):
    """After the write-back for a new reader, the old writer's cache is
    still valid: re-reading its own data needs no read RPCs."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"v" * 4096)
        yield from read_file(k1, "/data/f")  # forces write-back
        before = world2.client_rpc_count(SPROC.READ, i=0)
        data = yield from read_file(k0, "/data/f")
        return world2.client_rpc_count(SPROC.READ, i=0) - before, data

    extra_reads, data = runner.run(scenario())
    assert extra_reads == 0
    assert data == b"v" * 4096


def test_new_writer_invalidates_old_writers_cache(runner, world2):
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"first" * 800)
        # client 1 rewrites the file entirely
        yield from write_file(k1, "/data/f", b"SECOND" * 700)
        # client 0 reads again: must fetch fresh data (its cache was
        # invalidated by the callback when client 1 opened for write)
        data = yield from read_file(k0, "/data/f")
        return data

    assert runner.run(scenario()) == b"SECOND" * 700


def test_write_sharing_disables_caching_for_everyone(runner, world2):
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel
    flags = {}

    def scenario():
        yield from write_file(k0, "/data/f", b"seed")
        fd0 = yield from k0.open("/data/f", OpenMode.WRITE)
        fd1 = yield from k1.open("/data/f", OpenMode.READ)
        lfs = world2.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        flags["state"] = world2.server.state.state_of(key)
        g0 = [g for g in world2.mounts[0].live_gnodes() if not g.is_dir][0]
        g1 = [g for g in world2.mounts[1].live_gnodes() if not g.is_dir][0]
        flags["writer_caching"] = g0.private.get("cache_enabled")
        flags["reader_caching"] = g1.private.get("cache_enabled")
        # the writer's cached blocks were invalidated by the callback
        flags["writer_cached_blocks"] = len(
            world2.clients[0].cache.file_blocks(g0.cache_key)
        )
        yield from k0.close(fd0)
        yield from k1.close(fd1)

    runner.run(scenario())
    assert flags["state"] is FileState.WRITE_SHARED
    assert flags["writer_caching"] is False
    assert flags["reader_caching"] is False
    assert flags["writer_cached_blocks"] == 0


def test_write_shared_reads_and_writes_go_to_server(runner, world2):
    """While write-shared, a reader sees every write immediately: reads
    are served by the server, writes go through synchronously (§2.2)."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel
    observed = []

    def writer():
        fd = yield from k0.open("/data/f", OpenMode.WRITE, create=True)
        yield from k0.write(fd, b"AAAA")
        yield runner.sim.timeout(5.0)
        # by now the reader has the file open: we are write-shared and
        # this write is synchronous at the server
        k0.lseek(fd, 0)
        yield from k0.write(fd, b"BBBB")
        yield runner.sim.timeout(5.0)
        yield from k0.close(fd)

    def reader():
        yield runner.sim.timeout(2.0)
        fd = yield from k1.open("/data/f", OpenMode.READ)
        data1 = yield from k1.read(fd, 4)
        observed.append(bytes(data1))
        yield runner.sim.timeout(5.0)  # writer rewrote at t=5
        k1.lseek(fd, 0)
        data2 = yield from k1.read(fd, 4)
        observed.append(bytes(data2))
        yield from k1.close(fd)

    runner.run_all(writer(), reader())
    # SNFS guarantees the reader sees the writer's latest bytes
    assert observed == [b"AAAA", b"BBBB"]


def test_snfs_has_no_stale_window_unlike_nfs(runner, world2):
    """The NFS stale-read scenario, replayed over SNFS: the reader
    (whose open made the file write-shared) always sees fresh data."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel
    observations = {}

    def setup():
        yield from write_file(k0, "/data/f", b"old." * 1024)

    def reader():
        fd = yield from k1.open("/data/f", OpenMode.READ)
        data = yield from k1.read(fd, 4096)
        observations["initial"] = bytes(data)
        yield runner.sim.timeout(2.0)
        k1.lseek(fd, 0)
        data = yield from k1.read(fd, 4096)
        # 1 second after the write, well inside what would be NFS's
        # stale window: SNFS already serves the new data
        observations["immediately-after-write"] = bytes(data)
        yield from k1.close(fd)

    def writer():
        yield runner.sim.timeout(1.0)
        fd = yield from k0.open("/data/f", OpenMode.WRITE)
        yield from k0.write(fd, b"NEW!" * 1024)
        yield from k0.close(fd)

    runner.run(setup())
    runner.run_all(reader(), writer())
    assert observations["initial"] == b"old." * 1024
    assert observations["immediately-after-write"] == b"NEW!" * 1024


def test_sequential_sharing_version_invalidation(runner, world2):
    """Client 1 cached version N; client 0 rewrites (version N+1);
    client 1 reopens: version mismatch -> cache dropped, fresh read."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"one" * 1000)
        d1 = yield from read_file(k1, "/data/f")
        yield from write_file(k0, "/data/f", b"two" * 1000)
        d2 = yield from read_file(k1, "/data/f")
        return d1, d2

    d1, d2 = runner.run(scenario())
    assert d1 == b"one" * 1000
    assert d2 == b"two" * 1000


def test_read_only_sharing_needs_no_callbacks(runner, world2):
    """Once the initial CLOSED_DIRTY write-back has happened, read-only
    sharing is fully cachable: no more callbacks, however many readers."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"shared" * 100)
        # client 1's first open triggers the one write-back callback
        yield from read_file(k1, "/data/f")
        after_first = world2.server_host.rpc.client_stats.get(SPROC.CALLBACK)
        # from here on, read-only sharing generates no callbacks at all
        for _ in range(5):
            yield from read_file(k0, "/data/f")
            yield from read_file(k1, "/data/f")
        return after_first

    after_first = runner.run(scenario())
    assert after_first == 1
    assert world2.server_host.rpc.client_stats.get(SPROC.CALLBACK) == 1


def test_dead_client_callback_marks_inconsistent(runner, world2):
    """Callback target crashed: the open is honoured but flagged (§3.2)."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"unsynced" * 512)
        world2.clients[0].crash()
        # client 1 opens: the callback to client 0 times out
        fd = yield from k1.open("/data/f", OpenMode.READ)
        g = world2.mounts[1]._gnodes[
            [key for key in world2.mounts[1]._gnodes][-1]
        ]
        yield from k1.close(fd)
        return None

    runner.run(scenario(), limit=500.0)
    # the dead client's claim was dropped; the file is readable
    mount1 = world2.mounts[1]
    opened = [
        g for g in mount1.live_gnodes() if g.private.get("inconsistent")
    ]
    assert len(opened) >= 1


def test_state_table_reclaim_via_callbacks(runner):
    """Fill the state table with CLOSED_DIRTY files; the next open
    reclaims entries by writing back their dirty blocks (§4.3.1)."""
    world = SnfsWorld(runner, max_open_files=4)
    k = world.client.kernel

    def scenario():
        for i in range(4):
            yield from write_file(k, "/data/f%d" % i, b"d" * 4096)
        # table now holds 4 CLOSED_DIRTY entries == the limit
        assert len(world.server.state) == 4
        # opening a 5th file forces reclamation
        yield from write_file(k, "/data/f4", b"d" * 4096)

    runner.run(scenario())
    assert len(world.server.state) <= 4
    # reclamation flushed some dirty data back
    assert world.client_rpc_count(SPROC.WRITE) > 0
    assert world.server_host.rpc.client_stats.get(SPROC.CALLBACK) > 0
