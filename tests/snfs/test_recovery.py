"""SNFS server crash recovery tests (§2.4).

The paper describes (but did not implement) recovery; we implement it
and verify both properties it relies on: clients reconstruct the
server's state, and consistency state cannot change until the server
allows it (the grace period).
"""

import pytest

from repro.fs import OpenMode
from repro.snfs import SPROC, FileState
from tests.snfs.conftest import SnfsWorld, read_file, write_file


@pytest.fixture
def world(runner):
    return SnfsWorld(runner)


@pytest.fixture
def world2(runner):
    return SnfsWorld(runner, n_clients=2)


def test_client_survives_server_reboot_transparently(runner, world):
    """A client mid-workload sees the crash only as a delay."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"pre-crash" * 100)
        world.server.crash()
        yield runner.sim.timeout(1.0)
        world.server.reboot()
        # this open hits the grace period, triggers a reopen report,
        # waits, retries, and succeeds
        data = yield from read_file(k, "/data/f")
        return data

    data = runner.run(scenario(), limit=10000.0)
    assert data == b"pre-crash" * 100


def test_state_table_rebuilt_from_client_reports(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"dirty" * 900)
        # crash with the file open for write and dirty blocks cached
        world.server.crash()
        yield runner.sim.timeout(0.5)
        world.server.reboot()
        assert len(world.server.state) == 0
        # a cachable write is purely local; the next actual RPC (here,
        # an fsync's write-back) is what forces the reassertion
        yield from k.write(fd, b"more")
        assert len(world.server.state) == 0  # still lazy: no RPC yet
        yield from k.fsync(fd)
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        key = lfs.handle(inum).key()
        state = world.server.state.state_of(key)
        yield from k.close(fd)
        return state

    state = runner.run(scenario(), limit=10000.0)
    assert state is FileState.ONE_WRITER


def test_dirty_data_survives_server_crash(runner, world):
    """Delayed writes live in client memory; after server recovery the
    flush delivers them intact."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"precious" * 512)
        world.server.crash()
        yield runner.sim.timeout(2.0)
        world.server.reboot()
        yield from world.mount.sync()  # flush delayed writes
        # verify at the server itself
        lfs = world.export.lfs
        inum = yield from lfs.lookup(lfs.root_inum, "f")
        return lfs._attr(inum).size

    size = runner.run(scenario(), limit=10000.0)
    assert size == len(b"precious" * 512)


def test_consistency_preserved_across_recovery(runner, world2):
    """After recovery, a second client's open still triggers the
    write-back callback to the first: the rebuilt state is live."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"original" * 512)
        world2.server.crash()
        yield runner.sim.timeout(1.0)
        world2.server.reboot()
        # client 0 reasserts (CLOSED_DIRTY with dirty blocks) on its
        # next call; then client 1 reads — must see client 0's data
        yield from k0.stat("/data/f")
        data = yield from read_file(k1, "/data/f")
        return data

    data = runner.run(scenario(), limit=10000.0)
    assert data == b"original" * 512
    assert world2.server_host.rpc.client_stats.get(SPROC.CALLBACK) >= 1


def test_grace_period_rejects_until_over(runner, world):
    k = world.client.kernel
    times = {}

    def scenario():
        yield from write_file(k, "/data/f", b"x")
        world.server.crash()
        world.server.reboot()
        t0 = runner.sim.now
        yield from read_file(k, "/data/f")
        times["delay"] = runner.sim.now - t0

    runner.run(scenario(), limit=10000.0)
    # the read could not complete before the grace period ended
    assert times["delay"] >= world.server.grace_period * 0.9


def test_epoch_increases_on_each_reboot(runner, world):
    e0 = world.server.boot_epoch
    world.server.crash()
    world.server.reboot()
    world.server.crash()
    world.server.reboot()
    assert world.server.boot_epoch == e0 + 2


def test_client_crash_loses_its_claims(runner, world2):
    """A crashed client never comes back; its open is eventually
    forgotten when a callback to it fails (§3.2)."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"doomed" * 100)
        world2.clients[0].crash()
        data = yield from read_file(k1, "/data/f")
        return data

    data = runner.run(scenario(), limit=10000.0)
    # client 0's delayed writes died with it: client 1 sees the file as
    # the server knows it (empty — the data was never written back)
    assert data == b""
