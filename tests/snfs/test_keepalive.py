"""Dead-client reclamation: the server's keepalive sweep.

A client that crashes while holding files open would pin state-table
entries forever (and force every later conflicting open through a
doomed callback).  With ``keepalive_interval`` set, the server probes
clients it has not heard from and reclaims the state of any that fail
to answer — the same job ``lockd``'s status monitor does for locks.
"""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.snfs import SnfsClient, SnfsServer


class KeepaliveWorld:
    def __init__(self, runner):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = SnfsServer(
            self.server_host,
            self.export,
            keepalive_interval=10.0,
            dead_client_timeout=20.0,
        )
        self.client_host = Host(sim, self.network, "client0", HostConfig.titan_client())
        self.mount = SnfsClient("snfs0", self.client_host, "server")
        runner.run(self.mount.attach())
        self.client_host.kernel.mount("/data", self.mount)

    def sleep(self, seconds):
        def nap():
            yield self.runner.sim.timeout(seconds)

        # the keepalive loop is a perpetual daemon, so the sim is driven
        # with run_until on a finite probe, never a bare run()
        self.runner.run(nap())

    def holds_state(self, client):
        return any(
            client in e.open_clients() for e in self.server.state.entries()
        )


@pytest.fixture
def kworld(runner):
    return KeepaliveWorld(runner)


def _open_for_write(k, path):
    fd = yield from k.open(path, OpenMode.WRITE, create=True)
    yield from k.write(fd, b"x" * 64)
    return fd


def test_crashed_client_state_is_reclaimed(kworld):
    k = kworld.client_host.kernel
    kworld.runner.run(_open_for_write(k, "/data/f"))
    assert kworld.holds_state("client0")

    kworld.client_host.crash()  # and never reboots
    # silent past dead_client_timeout, then one probe that times out
    kworld.sleep(120.0)
    assert not kworld.holds_state("client0")


def test_live_but_idle_client_survives_the_sweep(kworld):
    """Idleness is not death: a client that answers the probe keeps its
    open-file state no matter how long it goes without making calls."""
    k = kworld.client_host.kernel
    kworld.runner.run(_open_for_write(k, "/data/f"))
    kworld.sleep(120.0)
    assert kworld.holds_state("client0")
