"""Detailed behaviour of the write-shared (non-cachable) mode (§4.2.1).

"If the file is not cachable, its blocks are never entered into the
cache.  Also, the standard Unix read-ahead is disabled in SNFS for
non-cachable files, since the extra blocks cannot be cached.  ...
If the file is write-shared (not cachable), SNFS guarantees
consistency by always fetching attributes from the server."
"""

import pytest

from repro.fs import OpenMode
from repro.snfs import SPROC
from tests.snfs.conftest import SnfsWorld, read_file, write_file


@pytest.fixture
def world2(runner):
    return SnfsWorld(runner, n_clients=2)


def make_write_shared(runner, world2):
    """Get /data/f into WRITE_SHARED with both clients holding it open."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel
    fds = {}

    def setup():
        yield from write_file(k0, "/data/f", b"S" * 4096 * 4)
        yield from world2.mounts[0].sync()
        fds["w"] = yield from k0.open("/data/f", OpenMode.WRITE)
        fds["r"] = yield from k1.open("/data/f", OpenMode.READ)

    runner.run(setup())
    return fds


def test_blocks_never_enter_cache_when_write_shared(runner, world2):
    fds = make_write_shared(runner, world2)
    k1 = world2.clients[1].kernel

    def scenario():
        yield from k1.read(fds["r"], 4096)
        k1.lseek(fds["r"], 0)
        yield from k1.read(fds["r"], 4096)

    blocks_before = len(world2.clients[1].cache)
    runner.run(scenario())
    # the reads did not populate the client cache at all
    assert len(world2.clients[1].cache) == blocks_before
    # so both reads were server RPCs
    assert world2.client_rpc_count(SPROC.READ, i=1) >= 2


def test_readahead_disabled_when_write_shared(runner, world2):
    """Sequential reads of a cachable file trigger prefetch; of a
    write-shared file they must not (nothing can be cached)."""
    fds = make_write_shared(runner, world2)
    k1 = world2.clients[1].kernel

    def scenario():
        # sequential read pattern that would normally trigger read-ahead
        for bno in range(3):
            k1.lseek(fds["r"], bno * 4096)
            yield from k1.read(fds["r"], 4096)
        yield runner.sim.timeout(1.0)  # any prefetch would land by now

    runner.run(scenario())
    # exactly one read RPC per explicit read; no extra prefetch reads
    assert world2.client_rpc_count(SPROC.READ, i=1) == 3


def test_attributes_always_fetched_when_write_shared(runner, world2):
    fds = make_write_shared(runner, world2)
    k1 = world2.clients[1].kernel

    def scenario():
        for _ in range(3):
            yield from k1.fstat(fds["r"])

    runner.run(scenario())
    assert world2.client_rpc_count(SPROC.GETATTR, i=1) >= 3


def test_write_shared_writes_are_synchronous(runner, world2):
    fds = make_write_shared(runner, world2)
    k0 = world2.clients[0].kernel

    def scenario():
        before = world2.client_rpc_count(SPROC.WRITE, i=0)
        k0.lseek(fds["w"], 0)
        yield from k0.write(fds["w"], b"W" * 4096)
        # the write RPC happened before the syscall returned
        return world2.client_rpc_count(SPROC.WRITE, i=0) - before

    assert runner.run(scenario()) == 1
    assert world2.clients[0].cache.dirty_count() == 0


def test_reader_sees_every_synchronous_write_immediately(runner, world2):
    fds = make_write_shared(runner, world2)
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        for i in range(3):
            stamp = bytes([65 + i])
            k0.lseek(fds["w"], 0)
            yield from k0.write(fds["w"], stamp * 100)
            k1.lseek(fds["r"], 0)
            data = yield from k1.read(fds["r"], 100)
            assert bytes(data) == stamp * 100, i

    runner.run(scenario())
