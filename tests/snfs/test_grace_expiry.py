"""A client partitioned through the server's entire grace period.

The §2.4 recovery design assumes clients reassert their state during
the grace period.  A client that *cannot* — partitioned away until
after recovery ends — comes back holding dirty delayed writes and a
stale idea of the file.  Its late claim must be rejected (ESTALE-style)
rather than allowed to clobber data written since recovery, and the
rejection must also abort any dirty write-back already in flight.

This exercises two fixes:

* post-grace claims are individually validated (``_claim_conflicts``);
* version numbers carry the boot epoch in their high bits, so a
  version minted after the reboot always orders *above* any version
  the partitioned client still holds (without this, the restarted
  counter could mint small versions and the stale claim would pass
  the ``version < current`` check).
"""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.snfs import SnfsClient, SnfsClientConfig, SnfsServer

from .conftest import read_file, write_file

GRACE = 6.0


class GraceWorld:
    def __init__(self, runner):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = SnfsServer(self.server_host, self.export, grace_period=GRACE)
        self.clients = []
        self.mounts = []
        for i in range(2):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            mount = SnfsClient("snfs%d" % i, host, "server", config=SnfsClientConfig())
            runner.run(mount.attach())
            host.kernel.mount("/data", mount)
            self.clients.append(host)
            self.mounts.append(mount)

    def sleep(self, seconds):
        def nap():
            yield self.runner.sim.timeout(seconds)

        self.runner.run(nap())


@pytest.fixture
def gworld(runner):
    return GraceWorld(runner)


def test_partitioned_client_claim_rejected_after_grace(gworld):
    runner = gworld.runner
    ka, kb = gworld.clients[0].kernel, gworld.clients[1].kernel
    mount_a = gworld.mounts[0]

    # A writes and closes; the data is dirty in A's cache (delayed)
    runner.run(write_file(ka, "/data/f", b"A" * 100))
    assert mount_a.cache.dirty_buffers()

    # server power-fails; A is partitioned before the reboot and stays
    # cut off through the whole grace period
    gworld.server.crash()
    gworld.network.partition("client0", "server")
    gworld.server.reboot()
    gworld.sleep(GRACE + 1.0)
    assert not gworld.server.in_recovery

    # B (who missed the crash entirely) writes newer content, closes,
    # and makes it durable
    runner.run(write_file(kb, "/data/f", b"B" * 80))
    runner.run(kb.sync())

    # the partition heals; A's delayed write-back finally goes out, is
    # answered with ServerRecovering, and A's REOPEN claim is rejected:
    # the dirty data is discarded, not pushed over B's newer bytes
    gworld.network.heal("client0", "server")
    runner.run(ka.sync())
    assert not mount_a.cache.dirty_buffers()

    # server keeps B's content; A sees it too after a fresh open
    assert runner.run(read_file(kb, "/data/f")) == b"B" * 80
    assert runner.run(read_file(ka, "/data/f")) == b"B" * 80


def test_rebooted_server_versions_order_above_pre_crash_ones(gworld):
    runner = gworld.runner
    ka, kb = gworld.clients[0].kernel, gworld.clients[1].kernel

    runner.run(write_file(ka, "/data/f", b"before"))
    pre = gworld.mounts[0]._gnodes  # at least one version minted
    pre_versions = [
        g.private["version"] for g in pre.values() if "version" in g.private
    ]
    assert pre_versions

    gworld.server.crash()
    gworld.server.reboot()
    gworld.sleep(GRACE + 1.0)

    runner.run(write_file(kb, "/data/g", b"after"))
    post_versions = [
        g.private["version"]
        for g in gworld.mounts[1]._gnodes.values()
        if "version" in g.private
    ]
    assert post_versions
    assert min(post_versions) > max(pre_versions)
