"""Tests for NFS/SNFS coexistence (§6.1) via the HybridServer."""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.nfs import NfsClient, NfsClientConfig
from repro.snfs import SPROC, HybridServer, SnfsClient


class HybridWorld:
    """One hybrid server; client0 mounts via SNFS, client1 via NFS."""

    def __init__(self, runner):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = HybridServer(self.server_host, self.export)

        self.snfs_host = Host(sim, self.network, "snfs-client", HostConfig.titan_client())
        self.snfs_mount = SnfsClient("snfs0", self.snfs_host, "server")
        runner.run(self.snfs_mount.attach())
        self.snfs_host.kernel.mount("/data", self.snfs_mount)

        self.nfs_host = Host(sim, self.network, "nfs-client", HostConfig.titan_client())
        self.nfs_mount = NfsClient(
            "nfs0", self.nfs_host, "server",
            config=NfsClientConfig(invalidate_on_close=False),
        )
        runner.run(self.nfs_mount.attach())
        self.nfs_host.kernel.mount("/data", self.nfs_mount)


@pytest.fixture
def world(runner):
    return HybridWorld(runner)


def write_file(k, path, data):
    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def read_file(k, path, n=1 << 20):
    fd = yield from k.open(path, OpenMode.READ)
    data = yield from k.read(fd, n)
    yield from k.close(fd)
    return data


def test_both_protocols_reach_the_same_files(runner, world):
    ks = world.snfs_host.kernel
    kn = world.nfs_host.kernel

    def scenario():
        yield from write_file(ks, "/data/shared", b"written via SNFS")
        yield from world.snfs_mount.sync()  # flush delayed writes
        data = yield from read_file(kn, "/data/shared")
        return data

    assert runner.run(scenario()) == b"written via SNFS"


def test_nfs_read_pulls_snfs_dirty_blocks(runner, world):
    """An NFS read of a file with SNFS-side dirty delayed writes forces
    the write-back callback first — the NFS client sees fresh data."""
    ks = world.snfs_host.kernel
    kn = world.nfs_host.kernel

    def scenario():
        yield from write_file(ks, "/data/f", b"delayed" * 700)
        assert world.snfs_host.cache.dirty_count() > 0
        data = yield from read_file(kn, "/data/f")
        return data

    data = runner.run(scenario())
    assert data == b"delayed" * 700
    # the callback machinery fired toward the SNFS client
    assert world.server_host.rpc.client_stats.get(SPROC.CALLBACK) >= 1
    assert world.snfs_host.cache.dirty_count() == 0


def test_nfs_write_invalidates_snfs_cache(runner, world):
    ks = world.snfs_host.kernel
    kn = world.nfs_host.kernel

    def scenario():
        yield from write_file(ks, "/data/f", b"A" * 4096)
        yield from world.snfs_mount.sync()
        yield from read_file(ks, "/data/f")  # warm SNFS cache
        yield from write_file(kn, "/data/f", b"B" * 4096)
        # the SNFS client rereads: must observe the NFS client's bytes
        data = yield from read_file(ks, "/data/f")
        return data

    assert runner.run(scenario()) == b"B" * 4096


def test_snfs_open_after_nfs_write_disables_caching(runner, world):
    ks = world.snfs_host.kernel
    kn = world.nfs_host.kernel

    def scenario():
        yield from write_file(kn, "/data/f", b"from-nfs" * 512)
        fd = yield from ks.open("/data/f", OpenMode.READ)
        g = [g for g in world.snfs_mount.live_gnodes() if not g.is_dir][0]
        caching = g.private.get("cache_enabled")
        yield from ks.close(fd)
        return caching

    assert runner.run(scenario()) is False
    assert world.server.nfs_write_record_count() >= 1


def test_nfs_record_ages_out(runner, world):
    ks = world.snfs_host.kernel
    kn = world.nfs_host.kernel

    def scenario():
        yield from write_file(kn, "/data/f", b"x" * 4096)
        yield runner.sim.timeout(200.0)  # past the 150 s record window
        fd = yield from ks.open("/data/f", OpenMode.READ)
        g = [g for g in world.snfs_mount.live_gnodes() if not g.is_dir][0]
        caching = g.private.get("cache_enabled")
        yield from ks.close(fd)
        return caching

    assert runner.run(scenario()) is True
    assert world.server.nfs_write_record_count() == 0


def test_separate_exports_coexist_on_one_host(runner):
    """The easy half of §6.1: one server host, one NFS export and one
    SNFS export (distinct filesystems), one client mounting both."""
    from repro.nfs import NfsServer
    from repro.snfs import SnfsServer

    sim = runner.sim
    network = Network(sim)
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    nfs_export = server_host.add_local_fs("/nfs-export", fsid="nfsfs", disk_name="d0")
    snfs_export = server_host.add_local_fs("/snfs-export", fsid="snfsfs", disk_name="d0")
    NfsServer(server_host, nfs_export)
    SnfsServer(server_host, snfs_export)

    client = Host(sim, network, "client", HostConfig.titan_client())
    nfs_mount = NfsClient("n", client, "server")
    runner.run(nfs_mount.attach())
    client.kernel.mount("/via-nfs", nfs_mount)
    snfs_mount = SnfsClient("s", client, "server")
    runner.run(snfs_mount.attach())
    client.kernel.mount("/via-snfs", snfs_mount)

    k = client.kernel

    def scenario():
        yield from write_file(k, "/via-nfs/a", b"over nfs")
        yield from write_file(k, "/via-snfs/b", b"over snfs")
        a = yield from read_file(k, "/via-nfs/a")
        b = yield from read_file(k, "/via-snfs/b")
        return a, b

    a, b = runner.run(scenario())
    assert a == b"over nfs"
    assert b == b"over snfs"
