"""Tests for the §6.2 delayed-close extension."""

import pytest

from repro.fs import OpenMode
from repro.snfs import SPROC, SnfsClientConfig
from tests.snfs.conftest import SnfsWorld, read_file, write_file


@pytest.fixture
def world(runner):
    return SnfsWorld(
        runner, client_config=SnfsClientConfig(delayed_close=True)
    )


@pytest.fixture
def world2(runner):
    return SnfsWorld(
        runner, n_clients=2, client_config=SnfsClientConfig(delayed_close=True)
    )


def test_reopen_cancels_pending_close(runner, world):
    """open/close/open/close of the same file in the same mode costs
    one open RPC and zero immediate closes (§6.2)."""
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x")
        yield from k.close(fd)
        opens_after_first = world.client_rpc_count(SPROC.OPEN)
        # reopen: satisfied locally against the pending close
        fd = yield from k.open("/data/f", OpenMode.WRITE)
        yield from k.close(fd)
        fd = yield from k.open("/data/f", OpenMode.WRITE)
        yield from k.close(fd)
        return opens_after_first

    opens_after_first = runner.run(scenario())
    assert world.client_rpc_count(SPROC.OPEN) == opens_after_first
    assert world.client_rpc_count(SPROC.CLOSE) == 0


def test_mismatched_mode_sends_pending_close_then_opens(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        # reopening for READ doesn't match the pending WRITE close:
        # a real open RPC goes out
        fd = yield from k.open("/data/f", OpenMode.READ)
        yield from k.close(fd)

    runner.run(scenario())
    assert world.client_rpc_count(SPROC.OPEN) == 2


def test_callback_relinquishes_delayed_close_file(runner, world2):
    """The paper: 'If a client with a delayed-close file receives a
    callback for that file, the appropriate response is to close the
    file so that it can be cached by the new client host.'"""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"mine" * 1024)
        # client 0 now holds a delayed close; client 1 wants the file
        data = yield from read_file(k1, "/data/f")
        return data

    data = runner.run(scenario())
    assert data == b"mine" * 1024
    # client 0 sent its withheld close when the callback arrived
    assert world2.client_rpc_count(SPROC.CLOSE, i=0) >= 1


def test_close_daemon_relinquishes_idle_files(runner):
    world = SnfsWorld(
        runner,
        client_config=SnfsClientConfig(
            delayed_close=True, delayed_close_timeout=10.0
        ),
    )
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x")
        assert world.client_rpc_count(SPROC.CLOSE) == 0
        yield runner.sim.timeout(25.0)
        return world.client_rpc_count(SPROC.CLOSE)

    assert runner.run(scenario()) >= 1


def test_delayed_close_preserves_correctness_between_clients(runner, world2):
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"one")
        d1 = yield from read_file(k1, "/data/f")
        yield from write_file(k0, "/data/f", b"two")
        d2 = yield from read_file(k1, "/data/f")
        return d1, d2

    d1, d2 = runner.run(scenario())
    assert d1 == b"one"
    assert d2 == b"two"
