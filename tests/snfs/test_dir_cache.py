"""Tests for the consistent directory-entry cache (§7 extension).

Unlike the TTL name cache, this one is exact: cached translations live
forever and the server invalidates them by callback whenever the
directory's namespace changes.
"""

import pytest

from repro.fs import NoSuchFile, OpenMode
from repro.snfs import SPROC, SnfsClientConfig
from tests.snfs.conftest import SnfsWorld, read_file, write_file


CFG = SnfsClientConfig(consistent_dir_cache=True)


@pytest.fixture
def world(runner):
    return SnfsWorld(runner, client_config=CFG)


@pytest.fixture
def world2(runner):
    return SnfsWorld(runner, n_clients=2, client_config=CFG)


def test_repeat_lookups_cost_nothing_forever(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x")
        yield from k.stat("/data/f")
        before = world.client_rpc_count(SPROC.LOOKUP)
        # far beyond any TTL: entries never expire on their own
        yield runner.sim.timeout(10_000.0)
        for _ in range(10):
            yield from k.stat("/data/f")
        return world.client_rpc_count(SPROC.LOOKUP) - before

    assert runner.run(scenario()) == 0


def test_remote_unlink_invalidates_cached_name(runner, world2):
    """Client 1 caches a translation; client 0 removes the file; the
    server's name-invalidation callback keeps client 1 correct."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"x")
        yield from k1.stat("/data/f")  # client 1 caches the name
        yield from k0.unlink("/data/f")
        # client 1's next stat must miss its cache and see NoSuchFile
        with pytest.raises(NoSuchFile):
            yield from k1.stat("/data/f")

    runner.run(scenario())
    assert world2.server_host.rpc.client_stats.get(SPROC.CALLBACK) >= 1


def test_remote_rename_invalidates_both_names(runner, world2):
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/old", b"content")
        yield from k1.stat("/data/old")
        yield from k0.rename("/data/old", "/data/new")
        with pytest.raises(NoSuchFile):
            yield from k1.stat("/data/old")
        data = yield from read_file(k1, "/data/new")
        return data

    assert runner.run(scenario()) == b"content"


def test_own_mutations_keep_own_cache_consistent(runner, world):
    """The mutating client purges locally and is not called back."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x")
        yield from k.stat("/data/f")
        yield from k.unlink("/data/f")
        with pytest.raises(NoSuchFile):
            yield from k.stat("/data/f")

    runner.run(scenario())
    assert world.server_host.rpc.client_stats.get(SPROC.CALLBACK) == 0


def test_dir_cache_reduces_andrew_lookups_with_exact_consistency():
    from repro.experiments import run_andrew
    from repro.workloads import make_tree

    tree = make_tree(n_dirs=1, files_per_dir=6)
    base = run_andrew("snfs", remote_tmp=True, tree=tree)
    cached = run_andrew("snfs", remote_tmp=True, tree=tree, client_config=CFG)
    assert cached.rpc_rows["lookup"] < base.rpc_rows["lookup"] * 0.6
    assert cached.result.total <= base.result.total


def test_dir_cache_cleared_by_server_recovery(runner, world):
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x")
        yield from k.stat("/data/f")
        world.server.crash()
        yield runner.sim.timeout(1.0)
        world.server.reboot()
        # next access triggers recovery; the name cache must be dropped
        # (the rebooted server no longer knows we cache translations)
        data = yield from read_file(k, "/data/f")
        return data, len(world.mount._name_cache)

    data, cache_size_probe = runner.run(scenario(), limit=10000.0)
    assert data == b"x"
