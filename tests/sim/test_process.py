"""Tests for processes: spawning, joining, interrupts, failure propagation."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_process_return_value_visible_to_joiner():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(2.0)
        return "done"

    def parent(sim):
        value = yield sim.spawn(child(sim))
        got.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert got == [(2.0, "done")]


def test_join_finished_process():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(1.0)
        return 7

    def parent(sim):
        proc = sim.spawn(child(sim))
        yield sim.timeout(5.0)
        value = yield proc
        got.append(value)

    sim.spawn(parent(sim))
    sim.run()
    assert got == [7]


def test_child_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except KeyError as exc:
            caught.append(exc.args[0])

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["oops"]


def test_interrupt_raises_at_wait_point():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def waker(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt("wake-up")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(waker(sim, victim))
    sim.run()
    assert log == [("interrupted", 3.0, "wake-up")]


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def waker(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt()

    victim = sim.spawn(sleeper(sim))
    sim.spawn(waker(sim, victim))
    sim.run()
    assert log == [4.0]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupt_does_not_fire_original_wait():
    """After an interrupt, the event the process was waiting on must not
    resume it a second time when it eventually triggers."""
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(10.0)
            log.append("timeout-resumed")
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(50.0)
        log.append("second-sleep-done")

    def waker(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt()

    victim = sim.spawn(sleeper(sim))
    sim.spawn(waker(sim, victim))
    sim.run()
    assert log == ["interrupted", "second-sleep-done"]


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_process_is_alive_tracking():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5.0)

    proc = sim.spawn(child(sim))
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_yielding_non_waitable_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    def parent(sim):
        with pytest.raises(SimulationError):
            yield sim.spawn(bad(sim))

    sim.spawn(parent(sim))
    sim.run()


def test_nested_process_chain():
    sim = Simulator()
    got = []

    def leaf(sim):
        yield sim.timeout(1.0)
        return 1

    def middle(sim):
        value = yield sim.spawn(leaf(sim))
        return value + 1

    def root(sim):
        value = yield sim.spawn(middle(sim))
        got.append(value)

    sim.spawn(root(sim))
    sim.run()
    assert got == [2]


def test_many_processes_deterministic():
    sim = Simulator()
    order = []

    def proc(sim, i):
        yield sim.timeout(float(i % 3))
        order.append(i)

    for i in range(9):
        sim.spawn(proc(sim, i))
    sim.run()
    assert order == [0, 3, 6, 1, 4, 7, 2, 5, 8]
