"""Tests for the fast-path engine features: cancellable timers, the
``after()`` handle API, AnyOf loser detachment, and the O(1)
unhandled-failure bookkeeping."""

import pytest

from repro.sim import AnyOf, SimulationError, Simulator, Timeout


# -- Timeout.cancel ----------------------------------------------------------


def test_cancelled_timeout_never_fires():
    sim = Simulator()
    timer = sim.timeout(1.0, value="boom")
    timer.cancel()
    sim.run()
    assert not timer.triggered
    assert sim.now == 0.0  # nothing left to run; clock never advanced


def test_cancel_is_idempotent_and_noop_after_fire():
    sim = Simulator()
    timer = sim.timeout(1.0, value="v")
    sim.run()
    assert timer.triggered and timer.value == "v"
    timer.cancel()  # already fired: harmless
    timer.cancel()
    assert timer.triggered

    fresh = sim.timeout(1.0)
    fresh.cancel()
    fresh.cancel()  # double-cancel: harmless
    sim.run()
    assert not fresh.triggered


def test_cancelled_timer_is_skipped_not_dispatched():
    sim = Simulator()
    order = []

    def proc():
        yield sim.timeout(2.0)
        order.append(sim.now)

    doomed = sim.timeout(1.0)
    sim.spawn(proc())
    doomed.cancel()
    sim.run()
    # the run must not stop (or advance the clock) at the dead timer's
    # 1.0 deadline
    assert order == [2.0]


def test_peek_skips_cancelled_timers():
    sim = Simulator()
    first = sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.peek() == 1.0
    first.cancel()
    assert sim.peek() == 2.0


def test_run_until_limit_with_only_cancelled_work():
    sim = Simulator()
    gate = sim.event("gate")
    sim.timeout(5.0).cancel()
    sim.run_until(gate, limit=3.0)
    assert not gate.triggered
    assert sim.now == 0.0  # queue held only dead entries: nothing ran


# -- Simulator.after ---------------------------------------------------------


def test_after_runs_callback_with_args():
    sim = Simulator()
    seen = []
    handle = sim.after(1.5, seen.append, "x")
    assert handle.active
    sim.run()
    assert seen == ["x"]
    assert not handle.active


def test_after_cancel_prevents_callback():
    sim = Simulator()
    seen = []
    handle = sim.after(1.5, seen.append, "x")
    handle.cancel()
    assert not handle.active
    sim.run()
    assert seen == []
    handle.cancel()  # idempotent


def test_after_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-0.5, lambda: None)


def test_after_preserves_fifo_with_timeouts():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    sim.spawn(proc("a"))
    sim.after(1.0, order.append, "b")
    sim.spawn(proc("c"))
    sim.run()
    # the bare timer was scheduled before either process got to yield
    # its timeout, so at t=1.0 it fires first
    assert order == ["b", "a", "c"]


# -- AnyOf loser detachment --------------------------------------------------


def test_anyof_detaches_loser_callbacks():
    sim = Simulator()
    fast = sim.timeout(0.1)
    slow = sim.timeout(100.0)
    race = AnyOf(sim, [fast, slow])
    assert len(slow.callbacks) == 1
    sim.run(until=1.0)
    assert race.triggered and race.value[0] is fast
    # the loser no longer references the condition...
    assert slow.callbacks == []
    # ...and can be cancelled so the run queue drains early
    slow.cancel()
    assert sim.peek() is None


def test_anyof_loser_can_still_fire_harmlessly():
    sim = Simulator()
    fast = sim.timeout(0.1, value="fast")
    slow = sim.timeout(0.2, value="slow")
    race = AnyOf(sim, [fast, slow])
    sim.run()
    assert race.value == (fast, "fast")
    assert slow.triggered  # un-cancelled loser fires normally


def test_anyof_detaches_on_failure_too():
    sim = Simulator()

    class Boom(Exception):
        pass

    failing = sim.event("failing")
    slow = sim.timeout(100.0)
    race = AnyOf(sim, [failing, slow])
    race.defuse()
    failing.fail(Boom())
    sim.run(until=1.0)
    assert race.exception is not None
    assert slow.callbacks == []


# -- unhandled-failure bookkeeping ------------------------------------------


def test_many_concurrent_waiterless_failures_surface_first():
    # regression for the O(n) list.remove bookkeeping: thousands of
    # same-instant failures must stay cheap and surface in FIFO order
    sim = Simulator()

    class Boom(Exception):
        pass

    events = [sim.event("e%d" % i) for i in range(2000)]
    for i, ev in enumerate(events):
        ev.fail(Boom(i))
        if i % 2 == 1:
            ev.defuse()  # exercise the discard path for half of them
    with pytest.raises(Boom) as info:
        sim.run()
    assert info.value.args[0] == 0  # the first un-defused failure wins


def test_dispatched_failures_do_not_resurface():
    sim = Simulator()

    class Boom(Exception):
        pass

    results = []

    def waiter(ev):
        try:
            yield ev
        except Boom as exc:
            results.append(exc.args[0])

    events = [sim.event("e%d" % i) for i in range(50)]
    procs = [sim.spawn(waiter(ev)) for ev in events]

    def fail_all():
        for i, ev in enumerate(events):
            ev.fail(Boom(i))

    sim.after(1.0, fail_all)  # waiters park at t=0, failures land at t=1
    sim.run()
    assert results == list(range(50))
    assert all(p.triggered for p in procs)


# -- ordering preservation ---------------------------------------------------


def test_trigger_and_timer_interleave_in_seq_order():
    # mixed ready-deque and heap work due at the same instant must run
    # in global scheduling order, exactly as the single-heap engine did
    sim = Simulator()
    order = []

    def waiter(ev, tag):
        yield ev
        order.append(tag)

    def firer(ev):
        yield sim.timeout(1.0)
        ev.succeed()
        order.append("fired")

    ev = sim.event("gate")
    sim.spawn(waiter(ev, "w"))
    sim.spawn(firer(ev))

    def late():
        yield sim.timeout(1.0)
        order.append("late-timer")

    sim.spawn(late())
    sim.run()
    # at t=1.0: firer resumes (succeeds gate), then the late timer that
    # was scheduled at t=0 fires, then the gate's waiter (queued at
    # t=1.0, after the late timer) resumes
    assert order == ["fired", "late-timer", "w"]


def test_slotted_events_reject_ad_hoc_attributes():
    sim = Simulator()
    ev = sim.event("x")
    with pytest.raises(AttributeError):
        ev.scratch = 1  # __slots__: no per-instance dict on the hot path
