"""Tests for the simulation engine: events, timeouts, conditions, run()."""

import pytest

from repro.sim import AllOf, AnyOf, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_run_empty_queue_advances_to_until():
    sim = Simulator()
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0


def test_timeout_fires_at_right_time():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(3.5)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [3.5]


def test_timeout_value_passed_through():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="hello")
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_before_future_events():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(10.0)
        seen.append("late")

    sim.spawn(proc(sim))
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0
    sim.run()
    assert seen == ["late"]


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event("door")
    got = []

    def waiter(sim):
        value = yield ev
        got.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(2.0)
        ev.succeed(42)

    sim.spawn(waiter(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert got == [(2.0, 42)]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("boom"))


def test_event_fail_throws_into_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(sim):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.spawn(waiter(sim))
    sim.spawn(failer(sim))
    sim.run()
    assert caught == ["boom"]


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_yield_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("ready")
    got = []

    def proc(sim):
        value = yield ev
        got.append((sim.now, value))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(0.0, "ready")]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc(sim):
        values = yield AllOf(sim, [sim.timeout(1, "a"), sim.timeout(3, "b")])
        results.append((sim.now, values))

    sim.spawn(proc(sim))
    sim.run()
    assert results == [(3.0, ["a", "b"])]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    results = []

    def proc(sim):
        values = yield AllOf(sim, [])
        results.append(values)

    sim.spawn(proc(sim))
    sim.run()
    assert results == [[]]


def test_any_of_returns_first():
    sim = Simulator()
    results = []

    def proc(sim):
        ev, value = yield AnyOf(sim, [sim.timeout(5, "slow"), sim.timeout(1, "fast")])
        results.append((sim.now, value))

    sim.spawn(proc(sim))
    sim.run()
    assert results == [(1.0, "fast")]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(SimulationError):
        sim._schedule_at(5.0, lambda: None)


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_unhandled_failed_event_raises_from_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise ValueError("unobserved crash")

    sim.spawn(proc(sim))
    with pytest.raises(ValueError, match="unobserved crash"):
        sim.run()


def test_waiterless_failed_event_surfaces_at_run_end():
    # the failure happens in the run's final instant: no dispatch ever
    # executes for the event, so without explicit surfacing the
    # exception would be dropped on the floor
    sim = Simulator()

    def proc(sim):
        ev = sim.event(name="orphan")
        ev.fail(RuntimeError("dropped failure"))
        return 0
        yield

    sim.spawn(proc(sim))
    with pytest.raises(RuntimeError, match="dropped failure"):
        sim.run()


def test_waiterless_failed_event_surfaces_from_run_until():
    sim = Simulator()

    def proc(sim):
        ev = sim.event(name="orphan")
        ev.fail(RuntimeError("dropped failure"))
        return 0
        yield

    target = sim.spawn(proc(sim))
    with pytest.raises(RuntimeError, match="dropped failure"):
        sim.run_until(target)


def test_defused_waiterless_failure_stays_silent():
    sim = Simulator()

    def proc(sim):
        ev = sim.event(name="orphan")
        ev.fail(RuntimeError("reported elsewhere"))
        ev.defuse()
        return 0
        yield

    sim.spawn(proc(sim))
    sim.run()  # must not raise


def test_failed_event_with_waiter_is_not_double_reported():
    sim = Simulator()
    seen = []

    def failer(sim, ev):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("handled"))

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            seen.append(str(exc))

    ev = sim.event(name="shared")
    sim.spawn(failer(sim, ev))
    sim.spawn(waiter(sim, ev))
    sim.run()  # the waiter caught it; nothing should surface
    assert seen == ["handled"]
