"""Tests for Resource, Lock, Semaphore, Store, and Broadcast."""

import pytest

from repro.sim import Broadcast, Lock, Resource, Semaphore, SimulationError, Simulator, Store


# -- Resource ---------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def worker(sim, tag, hold):
        yield res.acquire()
        log.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        res.release()
        log.append(("end", tag, sim.now))

    sim.spawn(worker(sim, "a", 5))
    sim.spawn(worker(sim, "b", 5))
    sim.spawn(worker(sim, "c", 5))
    sim.run()
    starts = {tag: t for kind, tag, t in log if kind == "start"}
    assert starts["a"] == 0.0
    assert starts["b"] == 0.0
    assert starts["c"] == 5.0  # had to wait for a unit


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, tag):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    for tag in "abcd":
        sim.spawn(worker(sim, tag))
    sim.run()
    assert order == list("abcd")


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_try_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()


def test_resource_busy_time_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def worker(sim, start, hold):
        yield sim.timeout(start)
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()

    # busy [0, 4) from first worker, [10, 12) from second: total 6
    sim.spawn(worker(sim, 0, 4))
    sim.spawn(worker(sim, 10, 2))
    sim.run()
    assert res.busy_time() == pytest.approx(6.0)


def test_resource_busy_time_overlapping_holders_count_once():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def worker(sim, start, hold):
        yield sim.timeout(start)
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()

    # holder A [0, 10), holder B [5, 8): busy time is 10, not 13
    sim.spawn(worker(sim, 0, 10))
    sim.spawn(worker(sim, 5, 3))
    sim.run()
    assert res.busy_time() == pytest.approx(10.0)


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_lock_mutual_exclusion():
    sim = Simulator()
    lock = Lock(sim)
    inside = []

    def critical(sim, tag):
        yield lock.acquire()
        assert lock.locked
        inside.append(tag)
        assert len(inside) == 1
        yield sim.timeout(1)
        inside.remove(tag)
        lock.release()

    for tag in "xyz":
        sim.spawn(critical(sim, tag))
    sim.run()
    assert not lock.locked


# -- Semaphore ---------------------------------------------------------------


def test_semaphore_initial_tokens():
    sim = Simulator()
    sem = Semaphore(sim, value=2)
    got = []

    def taker(sim, tag):
        yield sem.down()
        got.append((tag, sim.now))

    def giver(sim):
        yield sim.timeout(5)
        sem.up()

    for tag in "abc":
        sim.spawn(taker(sim, tag))
    sim.spawn(giver(sim))
    sim.run()
    assert got == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_semaphore_up_beyond_initial():
    sim = Simulator()
    sem = Semaphore(sim, value=0)
    sem.up()
    sem.up()
    assert sem.value == 2


def test_semaphore_negative_value_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Semaphore(sim, value=-1)


# -- Store ---------------------------------------------------------------


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def getter(sim):
        item = yield store.get()
        got.append(item)

    sim.spawn(getter(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append((item, sim.now))

    def putter(sim):
        yield sim.timeout(3)
        store.put("late")

    sim.spawn(getter(sim))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [("late", 3.0)]


def test_store_fifo_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    sim.spawn(getter(sim, "g1"))
    sim.spawn(getter(sim, "g2"))

    def putter(sim):
        yield sim.timeout(1)
        store.put("first")
        store.put("second")

    sim.spawn(putter(sim))
    sim.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_store_try_get_and_len():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put(1)
    store.put(2)
    assert len(store) == 2
    ok, item = store.try_get()
    assert ok and item == 1
    assert store.peek_all() == [2]


# -- Broadcast ---------------------------------------------------------------


def test_broadcast_wakes_all_waiters():
    sim = Simulator()
    sig = Broadcast(sim)
    woken = []

    def waiter(sim, tag):
        yield sig.wait()
        woken.append((tag, sim.now))

    def firer(sim):
        yield sim.timeout(2)
        count = sig.fire()
        assert count == 2

    sim.spawn(waiter(sim, "a"))
    sim.spawn(waiter(sim, "b"))
    sim.spawn(firer(sim))
    sim.run()
    assert sorted(woken) == [("a", 2.0), ("b", 2.0)]


def test_broadcast_is_reusable():
    sim = Simulator()
    sig = Broadcast(sim)
    log = []

    def waiter(sim):
        yield sig.wait()
        log.append(sim.now)
        yield sig.wait()
        log.append(sim.now)

    def firer(sim):
        yield sim.timeout(1)
        sig.fire()
        yield sim.timeout(1)
        sig.fire()

    sim.spawn(waiter(sim))
    sim.spawn(firer(sim))
    sim.run()
    assert log == [1.0, 2.0]


def test_broadcast_fire_with_no_waiters():
    sim = Simulator()
    sig = Broadcast(sim)
    assert sig.fire() == 0
