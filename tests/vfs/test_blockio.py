"""Tests for the shared cached block I/O helpers."""

import pytest

from repro.fs.types import FileType
from repro.storage import BufferCache
from repro.vfs import block_range, cached_read, cached_write, merge_block
from repro.vfs.gnode import Gnode


class FakeFs:
    mount_id = "m0"


@pytest.fixture
def env(runner):
    cache = BufferCache(runner.sim, capacity_blocks=64)
    g = Gnode(FakeFs(), 1, FileType.REGULAR)
    return runner, cache, g


# -- pure helpers -------------------------------------------------------------


def test_block_range_spans():
    assert list(block_range(0, 10, 4096)) == [0]
    assert list(block_range(0, 4096, 4096)) == [0]
    assert list(block_range(0, 4097, 4096)) == [0, 1]
    assert list(block_range(4095, 2, 4096)) == [0, 1]
    assert list(block_range(8192, 100, 4096)) == [2]
    assert list(block_range(0, 0, 4096)) == []


def test_merge_block_overlay():
    assert merge_block(b"aaaa", 1, b"XX") == b"aXXa"
    assert merge_block(b"", 0, b"new") == b"new"
    assert merge_block(b"ab", 4, b"X") == b"ab\x00\x00X"
    assert merge_block(b"abcdef", 0, b"XY") == b"XYcdef"


# -- cached_read ---------------------------------------------------------------


def backing_store(blocks):
    fills = []

    def fill(bno):
        fills.append(bno)
        yield  # placeholder for I/O; tests use a zero-delay event
        return blocks.get(bno, b"")

    return fill, fills


def test_cached_read_fills_and_caches(env):
    runner, cache, g = env
    blocks = {0: b"A" * 4096, 1: b"B" * 100}
    fill_raw, fills = backing_store(blocks)

    def fill(bno):
        yield runner.sim.timeout(0)
        fills.append(bno)
        return blocks.get(bno, b"")

    def scenario():
        data = yield from cached_read(
            cache, g, 0, 4196, file_size=4196, block_size=4096, fill_fn=fill,
            readahead=False,
        )
        return data

    data = runner.run(scenario())
    assert data == b"A" * 4096 + b"B" * 100
    assert fills == [0, 1]
    # second read hits cache, no more fills
    data2 = runner.run(scenario())
    assert data2 == data
    assert fills == [0, 1]


def test_cached_read_clamps_at_eof(env):
    runner, cache, g = env

    def fill(bno):
        yield runner.sim.timeout(0)
        return b"x" * 10

    def scenario():
        data = yield from cached_read(
            cache, g, 5, 100, file_size=10, block_size=4096, fill_fn=fill,
            readahead=False,
        )
        return data

    assert runner.run(scenario()) == b"x" * 5


def test_cached_read_past_eof_empty(env):
    runner, cache, g = env

    def fill(bno):
        yield runner.sim.timeout(0)
        return b""

    def scenario():
        data = yield from cached_read(
            cache, g, 100, 10, file_size=50, block_size=4096, fill_fn=fill,
            readahead=False,
        )
        return data

    assert runner.run(scenario()) == b""


def test_readahead_prefetches_next_block(env):
    runner, cache, g = env
    filled = []

    def fill(bno):
        yield runner.sim.timeout(0.001)
        filled.append(bno)
        return b"z" * 4096

    def scenario():
        # sequential reads of block 0 then 1 -> prefetch of 2 expected
        yield from cached_read(
            cache, g, 0, 4096, file_size=3 * 4096, block_size=4096,
            fill_fn=fill, readahead=True, sim=runner.sim,
        )
        yield from cached_read(
            cache, g, 4096, 4096, file_size=3 * 4096, block_size=4096,
            fill_fn=fill, readahead=True, sim=runner.sim,
        )
        yield runner.sim.timeout(1.0)  # let the prefetch land

    runner.run(scenario())
    assert 2 in filled
    assert cache.contains(g.cache_key, 2)


def test_no_readahead_on_random_access(env):
    runner, cache, g = env
    filled = []

    def fill(bno):
        yield runner.sim.timeout(0.001)
        filled.append(bno)
        return b"z" * 4096

    def scenario():
        yield from cached_read(
            cache, g, 8 * 4096, 4096, file_size=20 * 4096, block_size=4096,
            fill_fn=fill, readahead=True, sim=runner.sim,
        )
        yield from cached_read(
            cache, g, 2 * 4096, 4096, file_size=20 * 4096, block_size=4096,
            fill_fn=fill, readahead=True, sim=runner.sim,
        )
        yield runner.sim.timeout(1.0)

    runner.run(scenario())
    assert sorted(filled) == [2, 8]


# -- cached_write ---------------------------------------------------------------


def test_cached_write_whole_blocks_no_fill(env):
    runner, cache, g = env
    fills = []

    def fill(bno):
        yield runner.sim.timeout(0)
        fills.append(bno)
        return b""

    def scenario():
        bufs = yield from cached_write(
            cache, g, 0, b"D" * 8192, file_size=0, block_size=4096, fill_fn=fill,
        )
        return bufs

    bufs = runner.run(scenario())
    assert fills == []  # full-block writes never read
    assert [b.block_no for b in bufs] == [0, 1]
    assert all(b.dirty for b in bufs)


def test_cached_write_partial_block_fills_first(env):
    runner, cache, g = env
    backing = {0: b"o" * 4096}

    def fill(bno):
        yield runner.sim.timeout(0)
        return backing.get(bno, b"")

    def scenario():
        yield from cached_write(
            cache, g, 100, b"NEW", file_size=4096, block_size=4096, fill_fn=fill,
        )

    runner.run(scenario())
    buf = cache.lookup(g.cache_key, 0)
    assert buf.data[100:103] == b"NEW"
    assert buf.data[:100] == b"o" * 100
    assert buf.data[103:] == b"o" * (4096 - 103)


def test_cached_write_append_tail_no_fill(env):
    runner, cache, g = env
    fills = []

    def fill(bno):
        yield runner.sim.timeout(0)
        fills.append(bno)
        return b""

    def scenario():
        # appending at EOF (offset == file_size): the write covers the
        # whole meaningful part of the block, so no fill is needed
        yield from cached_write(
            cache, g, 0, b"tail", file_size=0, block_size=4096, fill_fn=fill,
        )

    runner.run(scenario())
    assert fills == []
    assert cache.lookup(g.cache_key, 0).data == b"tail"


def test_cached_write_no_dirty_mark_for_writethrough(env):
    runner, cache, g = env

    def fill(bno):
        yield runner.sim.timeout(0)
        return b""

    def scenario():
        bufs = yield from cached_write(
            cache, g, 0, b"data", file_size=0, block_size=4096, fill_fn=fill,
            mark_dirty=False,
        )
        return bufs

    bufs = runner.run(scenario())
    assert not bufs[0].dirty


def test_cached_write_updates_existing_buffer(env):
    runner, cache, g = env

    def fill(bno):
        yield runner.sim.timeout(0)
        return b""

    def scenario():
        yield from cached_write(
            cache, g, 0, b"AAAA", file_size=0, block_size=4096, fill_fn=fill,
        )
        yield from cached_write(
            cache, g, 2, b"BB", file_size=4, block_size=4096, fill_fn=fill,
        )

    runner.run(scenario())
    assert cache.lookup(g.cache_key, 0).data == b"AABB"
