"""Tests for the local-disk mount: delayed writes, cancellation, sync."""

import pytest

from repro.fs import NoSuchFile, OpenMode
from repro.net import Network
from repro.host import Host, HostConfig


@pytest.fixture
def host(runner):
    net = Network(runner.sim)
    h = Host(runner.sim, net, "machine")
    h.add_local_fs("/", fsid="rootfs")
    return h


def lfs_of(host):
    return host.kernel.mount_by_id("rootfs").lfs


def test_write_is_delayed_until_sync(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"hello world")
        yield from k.close(fd)

    runner.run(scenario())
    lfs = lfs_of(host)
    writes_after_close = lfs.disk.stats.get("writes")
    assert host.cache.dirty_count() == 1  # data still only in cache

    runner.run(host.kernel.sync())
    assert host.cache.dirty_count() == 0
    assert lfs.disk.stats.get("writes") > writes_after_close


def test_read_back_through_cache(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"abcdef")
        yield from k.close(fd)
        fd = yield from k.open("/f", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b"abcdef"


def test_delete_cancels_delayed_writes(runner, host):
    k = host.kernel
    lfs = lfs_of(host)

    def scenario():
        fd = yield from k.open("/tmpfile", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x" * 8192)
        yield from k.close(fd)
        yield from k.unlink("/tmpfile")

    runner.run(scenario())
    assert host.cache.stats.get("cancelled_writes") == 2
    # data blocks never reached the disk
    assert lfs.disk.stats.get("write_blocks") <= 4  # only metadata writes
    assert host.cache.dirty_count() == 0


def test_metadata_still_written_for_deleted_file(runner, host):
    """Table 5-5: even with cancelled data writes, structural info costs."""
    k = host.kernel
    lfs = lfs_of(host)
    before = lfs.disk.stats.get("writes")

    def scenario():
        fd = yield from k.open("/t", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x")
        yield from k.close(fd)
        yield from k.unlink("/t")

    runner.run(scenario())
    assert lfs.disk.stats.get("writes") > before


def test_fsync_flushes_one_file(runner, host):
    k = host.kernel

    def scenario():
        fd1 = yield from k.open("/a", OpenMode.WRITE, create=True)
        fd2 = yield from k.open("/b", OpenMode.WRITE, create=True)
        yield from k.write(fd1, b"a-data")
        yield from k.write(fd2, b"b-data")
        yield from k.fsync(fd1)
        yield from k.close(fd1)
        yield from k.close(fd2)

    runner.run(scenario())
    assert host.cache.dirty_count() == 1  # only /b remains dirty


def test_truncate_invalidates_cache(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"Z" * 5000)
        yield from k.close(fd)
        yield from k.truncate("/f", 0)
        fd = yield from k.open("/f", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b""


def test_open_truncate_flag(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"old contents")
        yield from k.close(fd)
        fd = yield from k.open("/f", OpenMode.WRITE, truncate=True)
        yield from k.write(fd, b"new")
        yield from k.close(fd)
        attr = yield from k.stat("/f")
        return attr.size

    assert runner.run(scenario()) == 3


def test_rename_replacing_file_cancels_victim_writes(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/victim", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"doomed data")
        yield from k.close(fd)
        fd = yield from k.open("/source", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"winner")
        yield from k.close(fd)
        yield from k.rename("/source", "/victim")
        fd = yield from k.open("/victim", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b"winner"


def test_update_daemon_flushes_periodically(runner, host):
    k = host.kernel
    host.update_daemon.start()

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"data")
        yield from k.close(fd)
        assert host.cache.dirty_count() == 1
        yield runner.sim.timeout(35)
        assert host.cache.dirty_count() == 0

    runner.run(scenario())
    host.update_daemon.stop()


def test_directory_operations_via_kernel(runner, host):
    k = host.kernel

    def scenario():
        yield from k.mkdir("/src")
        yield from k.mkdir("/src/sub")
        fd = yield from k.open("/src/sub/f.c", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"int main(){}")
        yield from k.close(fd)
        names = yield from k.readdir("/src/sub")
        yield from k.unlink("/src/sub/f.c")
        yield from k.rmdir("/src/sub")
        remaining = yield from k.readdir("/src")
        return names, remaining

    names, remaining = runner.run(scenario())
    assert names == ["f.c"]
    assert remaining == []


def test_stat_and_fstat_agree(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"12345")
        st1 = yield from k.fstat(fd)
        yield from k.close(fd)
        st2 = yield from k.stat("/f")
        return st1, st2

    st1, st2 = runner.run(scenario())
    assert st1.size == st2.size == 5


def test_unlink_missing_raises(runner, host):
    with pytest.raises(NoSuchFile):
        runner.run(host.kernel.unlink("/ghost"))


def test_lseek_and_partial_reads(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"0123456789")
        yield from k.close(fd)
        fd = yield from k.open("/f", OpenMode.READ)
        k.lseek(fd, 4)
        data = yield from k.read(fd, 3)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b"456"
