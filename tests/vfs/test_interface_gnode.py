"""Unit tests for the FileSystemType base and Gnode."""

import pytest

from repro.fs.types import FileHandle, FileType
from repro.vfs import FileSystemType, Gnode


class DummyFs(FileSystemType):
    pass


def test_gnode_canonical_per_fid():
    fs = DummyFs("m0")
    g1 = fs.gnode_for(42, FileType.REGULAR)
    g2 = fs.gnode_for(42, FileType.REGULAR)
    assert g1 is g2
    assert len(fs.live_gnodes()) == 1


def test_gnode_for_filehandle_uses_key():
    fs = DummyFs("m0")
    fh_a = FileHandle("fs", 7, 1)
    fh_b = FileHandle("fs", 7, 1)  # equal but distinct object
    g1 = fs.gnode_for(fh_a, FileType.REGULAR)
    g2 = fs.gnode_for(fh_b, FileType.REGULAR)
    assert g1 is g2
    # a different generation is a different file
    g3 = fs.gnode_for(FileHandle("fs", 7, 2), FileType.REGULAR)
    assert g3 is not g1


def test_drop_gnode():
    fs = DummyFs("m0")
    g = fs.gnode_for(1, FileType.REGULAR)
    fs.drop_gnode(g)
    assert fs.live_gnodes() == []
    assert fs.gnode_for(1, FileType.REGULAR) is not g


def test_gnode_cache_key_includes_mount():
    fs_a = DummyFs("a")
    fs_b = DummyFs("b")
    ga = fs_a.gnode_for(1, FileType.REGULAR)
    gb = fs_b.gnode_for(1, FileType.REGULAR)
    assert ga.cache_key != gb.cache_key
    assert ga.cache_key == ("a", 1)


def test_gnode_open_tracking():
    fs = DummyFs("m")
    g = fs.gnode_for(1, FileType.REGULAR)
    assert not g.is_open
    g.open_reads += 1
    assert g.is_open
    g.open_reads -= 1
    g.open_writes += 2
    assert g.is_open
    g.open_writes -= 2
    assert not g.is_open


def test_gnode_is_dir():
    fs = DummyFs("m")
    assert fs.gnode_for(1, FileType.DIRECTORY).is_dir
    assert not fs.gnode_for(2, FileType.REGULAR).is_dir


def test_abstract_methods_raise():
    fs = DummyFs("m")
    g = fs.gnode_for(1, FileType.REGULAR)
    for method, args in [
        ("root", ()),
        ("lookup", (g, "x")),
        ("read", (g, 0, 1)),
        ("write", (g, 0, b"")),
        ("getattr", (g,)),
    ]:
        with pytest.raises(NotImplementedError):
            result = getattr(fs, method)(*args)
            # coroutine-style methods raise on first next()
            if hasattr(result, "send"):
                next(result)


def test_repr_mentions_mount_and_counts():
    fs = DummyFs("mnt7")
    g = fs.gnode_for(5, FileType.REGULAR)
    g.open_reads = 2
    text = repr(g)
    assert "mnt7" in text and "r=2" in text
