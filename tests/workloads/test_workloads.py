"""Integration tests for the workloads on a local-disk host."""

import pytest

from repro.fs import OpenMode
from repro.host import Host
from repro.net import Network
from repro.workloads import (
    AndrewBenchmark,
    AndrewConfig,
    ExternalSort,
    SortConfig,
    make_input_records,
    make_tree,
)
from repro.workloads.sort import RECORD_LEN


@pytest.fixture
def host(runner):
    h = Host(runner.sim, Network(runner.sim), "machine")
    h.add_local_fs("/", fsid="rootfs")
    return h


def test_andrew_runs_all_phases(runner, host):
    k = host.kernel
    tree = make_tree(n_dirs=2, files_per_dir=4)  # small for speed
    bench = AndrewBenchmark(k, "/src", "/dst", "/tmpdir", tree=tree)

    def scenario():
        yield from k.mkdir("/src")
        yield from k.mkdir("/tmpdir")
        yield from bench.populate_source()
        result = yield from bench.run()
        return result

    result = runner.run(scenario())
    assert set(result.phase_seconds) == {
        "MakeDir", "Copy", "ScanDir", "ReadAll", "Make",
    }
    assert all(t >= 0 for t in result.phase_seconds.values())
    assert result.total > 0
    assert len(result.row()) == 6


def test_andrew_copy_produces_identical_tree(runner, host):
    k = host.kernel
    tree = make_tree(n_dirs=1, files_per_dir=3)
    bench = AndrewBenchmark(k, "/src", "/dst", "/tmpdir", tree=tree)

    def scenario():
        yield from k.mkdir("/src")
        yield from k.mkdir("/tmpdir")
        yield from bench.populate_source()
        yield from bench.phase_makedir()
        yield from bench.phase_copy()
        # verify one copied file byte-for-byte
        f = tree.files[0]
        fd = yield from k.open("/dst/" + f.path, OpenMode.READ)
        data = yield from k.read(fd, 1 << 20)
        yield from k.close(fd)
        return bytes(data), f.content

    got, expected = runner.run(scenario())
    assert got == expected


def test_andrew_make_deletes_temporaries(runner, host):
    k = host.kernel
    tree = make_tree(n_dirs=1, files_per_dir=3)
    bench = AndrewBenchmark(k, "/src", "/dst", "/tmpdir", tree=tree)

    def scenario():
        yield from k.mkdir("/src")
        yield from k.mkdir("/tmpdir")
        yield from bench.populate_source()
        yield from bench.phase_makedir()
        yield from bench.phase_copy()
        yield from bench.phase_make()
        leftovers = yield from k.readdir("/tmpdir")
        dst = yield from k.readdir("/dst/sub0")
        return leftovers, dst

    leftovers, dst = runner.run(scenario())
    assert leftovers == []  # every cc intermediate was deleted
    assert any(name.endswith(".o") for name in dst)


def test_andrew_make_emits_linked_binary(runner, host):
    k = host.kernel
    tree = make_tree(n_dirs=1, files_per_dir=2)
    bench = AndrewBenchmark(k, "/src", "/dst", "/tmpdir", tree=tree)

    def scenario():
        yield from k.mkdir("/src")
        yield from k.mkdir("/tmpdir")
        yield from bench.populate_source()
        result = yield from bench.run()
        attr = yield from k.stat("/dst/a.out")
        return attr.size

    assert runner.run(scenario()) > 0


def test_external_sort_produces_sorted_output(runner, host):
    k = host.kernel
    data = make_input_records(40 * RECORD_LEN)

    def scenario():
        yield from k.mkdir("/tmpdir")
        fd = yield from k.open("/unsorted", OpenMode.WRITE, create=True)
        yield from k.write(fd, data)
        yield from k.close(fd)
        sorter = ExternalSort(
            k, "/unsorted", "/sorted", "/tmpdir",
            config=SortConfig(run_bytes=8 * RECORD_LEN, merge_width=2),
        )
        result = yield from sorter.run()
        fd = yield from k.open("/sorted", OpenMode.READ)
        out = yield from k.read(fd, 1 << 20)
        yield from k.close(fd)
        leftovers = yield from k.readdir("/tmpdir")
        return result, bytes(out), leftovers

    result, out, leftovers = runner.run(scenario())
    records = [out[i:i + RECORD_LEN] for i in range(0, len(out), RECORD_LEN)]
    expected = sorted(data[i:i + RECORD_LEN] for i in range(0, len(data), RECORD_LEN))
    assert records == expected
    assert leftovers == []  # all temp runs deleted
    assert result.runs > 1  # genuinely external
    assert result.merge_passes >= 1
    assert result.temp_bytes_written > len(data)  # super-linear temps


def test_external_sort_single_run_no_merge(runner, host):
    k = host.kernel
    data = make_input_records(4 * RECORD_LEN)

    def scenario():
        yield from k.mkdir("/tmpdir")
        fd = yield from k.open("/unsorted", OpenMode.WRITE, create=True)
        yield from k.write(fd, data)
        yield from k.close(fd)
        sorter = ExternalSort(
            k, "/unsorted", "/sorted", "/tmpdir",
            config=SortConfig(run_bytes=1024 * 1024),
        )
        result = yield from sorter.run()
        return result

    result = runner.run(scenario())
    assert result.runs == 1
    assert result.merge_passes == 0
