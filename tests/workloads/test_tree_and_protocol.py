"""Tests for the tree generator and protocol accounting helpers."""

import pytest

from repro.nfs import classify_ops, proc_basename
from repro.workloads import make_tree
from repro.workloads.sort import RECORD_LEN, make_input_records


# -- tree generator ---------------------------------------------------------


def test_tree_is_andrew_scale():
    tree = make_tree()
    assert 60 <= len(tree.files) <= 90
    assert 150_000 <= tree.total_bytes() <= 300_000


def test_tree_deterministic():
    t1 = make_tree(seed=7)
    t2 = make_tree(seed=7)
    assert [f.path for f in t1.files] == [f.path for f in t2.files]
    assert all(a.content == b.content for a, b in zip(t1.files, t2.files))


def test_tree_different_seeds_differ():
    t1 = make_tree(seed=1)
    t2 = make_tree(seed=2)
    assert any(a.content != b.content for a, b in zip(t1.files, t2.files))


def test_sources_include_headers():
    tree = make_tree()
    header_paths = {h.path for h in tree.headers()}
    for src in tree.sources():
        assert src.includes
        assert all(h in header_paths for h in src.includes)


def test_directories_listed_parents_first():
    tree = make_tree()
    seen = set()
    for d in tree.directories:
        parent = d.rsplit("/", 1)[0] if "/" in d else None
        assert parent is None or parent in seen
        seen.add(d)


# -- sort input -----------------------------------------------------------


def test_sort_input_record_structure():
    data = make_input_records(10 * RECORD_LEN)
    assert len(data) == 10 * RECORD_LEN
    records = [data[i:i + RECORD_LEN] for i in range(0, len(data), RECORD_LEN)]
    assert all(r.endswith(b"\n") for r in records)
    assert records != sorted(records)  # genuinely unsorted


def test_sort_input_deterministic():
    assert make_input_records(1024, seed=3) == make_input_records(1024, seed=3)
    assert make_input_records(1024, seed=3) != make_input_records(1024, seed=4)


# -- protocol op classification ----------------------------------------------


def test_proc_basename():
    assert proc_basename("nfs.read") == "read"
    assert proc_basename("snfs.open") == "open"
    assert proc_basename("bare") == "bare"


def test_classify_ops_buckets():
    rows = classify_ops(
        {
            "nfs.lookup": 10,
            "nfs.read": 5,
            "snfs.open": 3,
            "snfs.close": 3,
            "nfs.mkdir": 2,
            "nfs.read.retransmit": 7,  # transport noise: excluded
        }
    )
    assert rows["lookup"] == 10
    assert rows["read"] == 5
    assert rows["open"] == 3
    assert rows["close"] == 3
    assert rows["other"] == 2
    assert rows["total"] == 23


def test_classify_ops_empty():
    rows = classify_ops({})
    assert rows["total"] == 0
    assert set(rows) == {
        "lookup", "read", "write", "getattr", "open", "close",
        "callback", "other", "total",
    }
