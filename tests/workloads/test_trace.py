"""Tests for the trace format, synthesizer, and replayer."""

import pytest

from repro.fs import OpenMode
from repro.host import Host
from repro.net import Network
from repro.workloads.trace import (
    Trace,
    TraceOp,
    TraceReplayer,
    dump_trace,
    parse_trace,
    synthesize_trace,
)


SAMPLE = """
# a tiny trace
0.000 mkdir /d
0.100 create /d/f 8192
0.500 read /d/f
2.000 append /d/f 100
9.000 delete /d/f
"""


def test_parse_and_dump_roundtrip():
    trace = parse_trace(SAMPLE)
    assert len(trace) == 5
    assert trace.ops[1] == TraceOp(0.1, "create", "/d/f", 8192)
    again = parse_trace(dump_trace(trace))
    assert again.ops == trace.ops


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_trace("0.0 create")  # missing path


def test_validate_accepts_sample():
    assert parse_trace(SAMPLE).validate() == []


def test_validate_catches_problems():
    bad = Trace(
        ops=[
            TraceOp(1.0, "read", "/never-created"),
            TraceOp(0.5, "create", "/x", 10),  # time goes backwards
            TraceOp(0.6, "frobnicate", "/x"),
            TraceOp(0.7, "delete", "/ghost"),
        ]
    )
    problems = bad.validate()
    assert any("unknown path" in p for p in problems)
    assert any("backwards" in p for p in problems)
    assert any("unknown op" in p for p in problems)
    assert any("delete of unknown" in p for p in problems)


def test_synthesize_trace_is_valid_and_deterministic():
    t1 = synthesize_trace(seed=5)
    t2 = synthesize_trace(seed=5)
    assert t1.ops == t2.ops
    assert t1.validate() == []
    assert len(t1) > 100
    assert t1.duration() > 0


def test_replay_on_local_fs(runner):
    host = Host(runner.sim, Network(runner.sim), "m")
    host.add_local_fs("/", fsid="rootfs")
    trace = parse_trace(SAMPLE.replace("/d", "/tdir"))
    replayer = TraceReplayer(host.kernel, trace)
    done = runner.run(replayer.run())
    assert done == 5
    assert replayer.errors == []
    # timestamps honoured: the run took as long as the trace
    assert runner.sim.now >= 9.0


def test_replay_time_scale(runner):
    host = Host(runner.sim, Network(runner.sim), "m")
    host.add_local_fs("/", fsid="rootfs")
    trace = parse_trace(SAMPLE.replace("/d", "/tdir"))
    replayer = TraceReplayer(host.kernel, trace, time_scale=0.1)
    runner.run(replayer.run())
    assert runner.sim.now < 2.0  # 9 s of trace squeezed into 0.9 s


def test_replay_records_errors_and_continues(runner):
    host = Host(runner.sim, Network(runner.sim), "m")
    host.add_local_fs("/", fsid="rootfs")
    trace = Trace(
        ops=[
            TraceOp(0.0, "read", "/missing"),
            TraceOp(0.1, "create", "/ok", 100),
        ]
    )
    replayer = TraceReplayer(host.kernel, trace)
    done = runner.run(replayer.run())
    assert done == 1
    assert len(replayer.errors) == 1


def test_replay_synthetic_over_snfs(runner):
    """A synthesized trace end-to-end over SNFS: the short-lifetime
    profile means most data never crosses the wire."""
    from tests.snfs.conftest import SnfsWorld

    world = SnfsWorld(runner)
    trace = synthesize_trace(root="/data", n_files=10, duration=30.0)
    replayer = TraceReplayer(world.client.kernel, trace)
    runner.run(replayer.run())
    assert replayer.errors == []
    from repro.snfs import SPROC

    writes = world.client_rpc_count(SPROC.WRITE)
    # create+append traffic was mostly delayed and cancelled
    assert writes < 20
