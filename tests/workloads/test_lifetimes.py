"""Unit tests for the file-lifetime workload."""

import pytest

from repro.host import Host
from repro.net import Network
from repro.workloads import LifetimeConfig, LifetimeWorkload


@pytest.fixture
def host(runner):
    h = Host(runner.sim, Network(runner.sim), "m")
    h.add_local_fs("/", fsid="rootfs")
    return h


def test_all_files_created_and_reaped(runner, host):
    cfg = LifetimeConfig(n_files=5, mean_lifetime=3.0, create_period=1.0)
    bench = LifetimeWorkload(host.kernel, "/", cfg)
    result = runner.run(bench.run())
    assert result.files_created == 5
    assert result.bytes_written == 5 * cfg.file_blocks * 4096

    names = runner.run(host.kernel.readdir("/"))
    assert names == []  # every file was deleted on schedule


def test_deterministic_given_seed(runner):
    h1 = Host(runner.sim, Network(runner.sim), "m1")
    h1.add_local_fs("/", fsid="fs1")
    cfg = LifetimeConfig(n_files=4, seed=9)
    r1 = runner.run(LifetimeWorkload(h1.kernel, "/", cfg).run())

    # second run in a fresh world
    from tests.conftest import SimRunner

    runner2 = SimRunner()
    h2 = Host(runner2.sim, Network(runner2.sim), "m2")
    h2.add_local_fs("/", fsid="fs2")
    r2 = runner2.run(LifetimeWorkload(h2.kernel, "/", cfg).run())
    assert r1.elapsed == r2.elapsed
    assert r1.bytes_written == r2.bytes_written


def test_short_lifetimes_cancel_local_writes(runner, host):
    cfg = LifetimeConfig(n_files=6, mean_lifetime=2.0, create_period=0.5)
    bench = LifetimeWorkload(host.kernel, "/", cfg)
    runner.run(bench.run())
    # most delayed data writes were cancelled before any flush
    assert host.cache.stats.get("cancelled_writes") > 0
