"""Tests for the RPC layer: calls, errors, retransmission, dup cache."""

import pytest

from repro.net import (
    Network,
    NetworkConfig,
    RpcConfig,
    RpcEndpoint,
    RpcProcedureError,
    RpcTimeout,
    estimate_size,
)
from repro.sim import Simulator


def make_pair(net_kw=None, rpc_kw=None):
    sim = Simulator()
    net = Network(sim, NetworkConfig(**(net_kw or {})))
    cfg = RpcConfig(**(rpc_kw or {}))
    client = RpcEndpoint(sim, net, "client", config=cfg)
    server = RpcEndpoint(sim, net, "server", config=cfg)
    return sim, net, client, server


def run_call(sim, client, *call_args, **call_kw):
    result = {}

    def caller(sim):
        try:
            result["value"] = yield from client.call(*call_args, **call_kw)
        except BaseException as exc:  # noqa: BLE001
            result["error"] = exc

    sim.spawn(caller(sim))
    sim.run()
    return result


def test_basic_call_and_reply():
    sim, net, client, server = make_pair()

    def add(src, a, b):
        yield sim.timeout(0.001)
        return a + b

    server.register("add", add)
    result = run_call(sim, client, "server", "add", 2, 3)
    assert result["value"] == 5


def test_handler_exception_propagates_to_caller():
    sim, net, client, server = make_pair()

    def explode(src):
        yield sim.timeout(0)
        raise KeyError("kaboom")

    server.register("explode", explode)
    result = run_call(sim, client, "server", "explode")
    assert isinstance(result["error"], KeyError)


def test_unknown_procedure_errors():
    sim, net, client, server = make_pair()
    result = run_call(sim, client, "server", "nonesuch")
    assert isinstance(result["error"], RpcProcedureError)


def test_duplicate_registration_rejected():
    sim, net, client, server = make_pair()

    def h(src):
        yield sim.timeout(0)

    server.register("p", h)
    with pytest.raises(Exception):
        server.register("p", h)


def test_call_to_dead_server_times_out():
    sim, net, client, server = make_pair(
        rpc_kw={"timeout": 0.1, "max_retries": 2, "backoff": 1.0}
    )
    server.crash()
    result = run_call(sim, client, "server", "anything")
    assert isinstance(result["error"], RpcTimeout)
    # 3 attempts x 0.1 s
    assert sim.now == pytest.approx(0.3, abs=0.05)


def test_retransmission_succeeds_after_packet_loss():
    # First packet dropped, retry gets through.
    sim = Simulator()
    net = Network(sim, NetworkConfig(drop_rate=0.0))
    cfg = RpcConfig(timeout=0.2, max_retries=3, backoff=1.0)
    client = RpcEndpoint(sim, net, "client", config=cfg)
    server = RpcEndpoint(sim, net, "server", config=cfg)
    calls = []

    def ping(src):
        calls.append(sim.now)
        yield sim.timeout(0.001)
        return "pong"

    server.register("ping", ping)
    # Drop exactly the first transmission by toggling drop_rate.
    net.config.drop_rate = 1.0

    def undrop(sim):
        yield sim.timeout(0.1)
        net.config.drop_rate = 0.0

    sim.spawn(undrop(sim))
    result = run_call(sim, client, "server", "ping")
    assert result["value"] == "pong"
    assert client.client_stats.get("ping.retransmit") >= 1


def test_dup_cache_prevents_reexecution():
    """A slow handler + short client timeout: the retransmission must not
    run the handler twice (at-most-once execution via the dup cache)."""
    sim, net, client, server = make_pair(
        rpc_kw={"timeout": 0.05, "max_retries": 5, "backoff": 1.0}
    )
    executions = []

    def slow_increment(src):
        executions.append(sim.now)
        yield sim.timeout(0.2)  # longer than client timeout
        return len(executions)

    server.register("inc", slow_increment)
    result = run_call(sim, client, "server", "inc")
    assert result["value"] == 1
    assert len(executions) == 1


def test_dup_cache_resends_completed_reply():
    """Reply lost on the way back: the retransmitted request is answered
    from the dup cache without re-running the handler."""
    sim = Simulator()
    net = Network(sim, NetworkConfig())
    cfg = RpcConfig(timeout=0.3, max_retries=3, backoff=1.0)
    client = RpcEndpoint(sim, net, "client", config=cfg)
    server = RpcEndpoint(sim, net, "server", config=cfg)
    executions = []

    def handler(src):
        executions.append(sim.now)
        yield sim.timeout(0.01)
        # lose the first reply only
        if len(executions) == 1:
            net.config.drop_rate = 1.0

            def undrop(sim):
                yield sim.timeout(0.05)
                net.config.drop_rate = 0.0

            sim.spawn(undrop(sim))
        return "done"

    server.register("h", handler)
    result = run_call(sim, client, "server", "h")
    assert result["value"] == "done"
    assert len(executions) == 1


def test_concurrent_calls_limited_by_thread_pool():
    sim, net, client, server = make_pair(rpc_kw={"server_threads": 2})
    active = []
    peak = []

    def busy(src):
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.pop()
        return "ok"

    server.register("busy", busy)
    done = []

    def caller(sim, i):
        value = yield from client.call("server", "busy")
        done.append(i)

    for i in range(5):
        sim.spawn(caller(sim, i))
    sim.run()
    assert len(done) == 5
    assert max(peak) <= 2


def test_server_to_client_call_symmetric():
    """SNFS callbacks: the server calls a procedure served by the client."""
    sim, net, client, server = make_pair()

    def client_side(src, msg):
        yield sim.timeout(0.001)
        return "client got " + msg

    client.register("callback", client_side)
    result = run_call(sim, server, "client", "callback", "hi")
    assert result["value"] == "client got hi"


def test_stats_recorded_both_sides():
    sim, net, client, server = make_pair()

    def noop(src):
        yield sim.timeout(0)
        return None

    server.register("noop", noop)
    run_call(sim, client, "server", "noop")
    assert client.client_stats.get("noop") == 1
    assert server.server_stats.get("noop") == 1


def test_estimate_size_rules():
    assert estimate_size(None) == 0
    assert estimate_size(b"x" * 4096) == 4096
    assert estimate_size("abc") == 3
    assert estimate_size((1, 2, 3)) == 24
    assert estimate_size({"k": b"xx"}) == 3
    assert estimate_size([b"a", b"bc"]) == 3


def test_hard_mount_retries_through_long_outage():
    """hard=True never gives up: the call outlasts a server crash that
    spans several backed-off retry cycles (the backoff caps at 30 s)."""
    sim, net, client, server = make_pair(
        rpc_kw={"timeout": 0.5, "max_retries": 1, "backoff": 2.0}
    )

    def add(src, a, b):
        yield sim.timeout(0.001)
        return a + b

    server.register("add", add)
    server.crash()

    def resurrect(sim):
        yield sim.timeout(70.0)
        server.reboot()

    sim.spawn(resurrect(sim))
    result = run_call(sim, client, "server", "add", 2, 3, hard=True)
    assert result["value"] == 5
    assert sim.now >= 70.0


def test_crash_and_reboot_cycle():
    sim, net, client, server = make_pair(
        rpc_kw={"timeout": 0.1, "max_retries": 1, "backoff": 1.0}
    )

    def ping(src):
        yield sim.timeout(0.001)
        return "pong"

    server.register("ping", ping)
    results = []

    def scenario(sim):
        server.crash()
        try:
            yield from client.call("server", "ping")
        except RpcTimeout:
            results.append("timeout")
        server.reboot()
        value = yield from client.call("server", "ping")
        results.append(value)

    sim.spawn(scenario(sim))
    sim.run()
    assert results == ["timeout", "pong"]
