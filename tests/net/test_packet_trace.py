"""Tests for the packet-trace observability feature."""

import pytest

from repro.net import Network, NetworkConfig, RpcEndpoint
from repro.sim import Simulator


def test_trace_disabled_by_default():
    sim = Simulator()
    net = Network(sim)
    a = net.attach("a")
    net.attach("b").listen(1)

    def sender():
        yield from a.send("b", 1, "x", size=10)

    proc = sim.spawn(sender())
    sim.run_until(proc, limit=10)
    assert net.packet_trace() == []


def test_trace_records_rpc_calls_and_replies():
    sim = Simulator()
    net = Network(sim, NetworkConfig(trace_packets=100))
    client = RpcEndpoint(sim, net, "client")
    server = RpcEndpoint(sim, net, "server")

    def ping(src):
        yield sim.timeout(0.001)
        return "pong"

    server.register("nfs.ping", ping)

    def caller():
        yield from client.call("server", "nfs.ping")

    proc = sim.spawn(caller())
    sim.run_until(proc, limit=10)
    kinds = [entry[3] for entry in net.packet_trace()]
    assert "call:nfs.ping" in kinds
    assert "reply:nfs.ping" in kinds
    # entries carry (t, src, dst, kind, size)
    t, src, dst, kind, size = net.packet_trace()[0]
    assert src == "client" and dst == "server"
    assert size > 0


def test_trace_is_bounded():
    sim = Simulator()
    net = Network(sim, NetworkConfig(trace_packets=5))
    a = net.attach("a")
    net.attach("b").listen(1)

    def sender():
        for i in range(20):
            yield from a.send("b", 1, i, size=10)

    proc = sim.spawn(sender())
    sim.run_until(proc, limit=10)
    assert len(net.packet_trace()) == 5
