"""Tests for the simulated network layer."""

import pytest

from repro.net import Network, NetworkConfig, NetworkError
from repro.sim import Simulator


def make_net(**kw):
    sim = Simulator()
    net = Network(sim, NetworkConfig(**kw))
    return sim, net


def test_attach_and_duplicate_address():
    sim, net = make_net()
    net.attach("a")
    with pytest.raises(NetworkError):
        net.attach("a")


def test_port_clash_rejected():
    sim, net = make_net()
    iface = net.attach("a")
    iface.listen(7)
    with pytest.raises(NetworkError):
        iface.listen(7)


def test_delivery_latency_and_payload():
    sim, net = make_net(latency=0.5, bandwidth=1e9)
    a = net.attach("a")
    b = net.attach("b")
    inbox = b.listen(9)
    got = []

    def sender(sim):
        yield from a.send("b", 9, "hello", size=100)

    def receiver(sim):
        pkt = yield inbox.get()
        got.append((sim.now, pkt.payload, pkt.src))

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    t, payload, src = got[0]
    assert payload == "hello"
    assert src == "a"
    assert t == pytest.approx(0.5, abs=1e-3)


def test_bandwidth_serialization_on_nic():
    # Two 1 MB messages over a 1 MB/s link: second is delayed a second.
    sim, net = make_net(latency=0.0, bandwidth=1e6)
    a = net.attach("a")
    b = net.attach("b")
    inbox = b.listen(1)
    arrivals = []

    def sender(sim, tag):
        yield from a.send("b", 1, tag, size=1_000_000)

    def receiver(sim):
        for _ in range(2):
            pkt = yield inbox.get()
            arrivals.append((pkt.payload, sim.now))

    sim.spawn(sender(sim, "first"))
    sim.spawn(sender(sim, "second"))
    sim.spawn(receiver(sim))
    sim.run()
    assert arrivals[0][0] == "first"
    assert arrivals[0][1] == pytest.approx(1.0)
    assert arrivals[1][1] == pytest.approx(2.0)


def test_unbound_port_packet_dropped():
    sim, net = make_net()
    a = net.attach("a")
    net.attach("b")

    def sender(sim):
        yield from a.send("b", 99, "void", size=10)

    sim.spawn(sender(sim))
    sim.run()
    assert net.stats.get("packets") == 1


def test_unroutable_counted():
    sim, net = make_net()
    a = net.attach("a")

    def sender(sim):
        yield from a.send("nowhere", 1, "x", size=10)

    sim.spawn(sender(sim))
    sim.run()
    assert net.stats.get("unroutable") == 1


def test_drop_rate_loses_packets():
    sim, net = make_net(drop_rate=1.0)
    a = net.attach("a")
    b = net.attach("b")
    inbox = b.listen(1)

    def sender(sim):
        yield from a.send("b", 1, "x", size=10)

    sim.spawn(sender(sim))
    sim.run()
    assert net.stats.get("dropped") == 1
    assert len(inbox) == 0


def test_down_interface_loses_packets():
    sim, net = make_net()
    a = net.attach("a")
    b = net.attach("b")
    inbox = b.listen(1)
    b.up = False

    def sender(sim):
        yield from a.send("b", 1, "x", size=10)

    sim.spawn(sender(sim))
    sim.run()
    assert len(inbox) == 0


def test_negative_size_rejected():
    sim, net = make_net()
    a = net.attach("a")
    net.attach("b")

    def sender(sim):
        yield from a.send("b", 1, "x", size=-5)

    def check(sim):
        with pytest.raises(NetworkError):
            yield sim.spawn(sender(sim))

    sim.spawn(check(sim))
    sim.run()


def test_byte_stats_accumulate():
    sim, net = make_net()
    a = net.attach("a")
    b = net.attach("b")
    b.listen(1)

    def sender(sim):
        yield from a.send("b", 1, "x", size=100)
        yield from a.send("b", 1, "y", size=200)

    sim.spawn(sender(sim))
    sim.run()
    assert net.stats.get("bytes") == 300
    assert net.stats.get("packets") == 2
