"""Edge-case RPC tests: hard mounts, backoff, dup-cache bounds."""

import pytest

from repro.net import Network, NetworkConfig, RpcConfig, RpcEndpoint, RpcTimeout
from repro.sim import Simulator


def make_pair(net_kw=None, rpc_kw=None):
    sim = Simulator()
    net = Network(sim, NetworkConfig(**(net_kw or {})))
    cfg = RpcConfig(**(rpc_kw or {}))
    client = RpcEndpoint(sim, net, "client", config=cfg)
    server = RpcEndpoint(sim, net, "server", config=cfg)
    return sim, net, client, server


def test_hard_mount_retries_until_server_returns():
    """hard=True never gives up: the call survives a long outage."""
    sim, net, client, server = make_pair(rpc_kw={"timeout": 0.5, "max_retries": 1})

    def ping(src):
        yield sim.timeout(0.001)
        return "pong"

    server.register("ping", ping)
    server.crash()
    results = []

    def caller():
        value = yield from client.call("server", "ping", hard=True)
        results.append((value, sim.now))

    def resurrect():
        yield sim.timeout(120.0)  # far beyond the soft-mount budget
        server.reboot()

    sim.spawn(caller())
    sim.spawn(resurrect())
    sim.run(until=400.0)
    assert results and results[0][0] == "pong"
    assert results[0][1] >= 120.0


def test_soft_mount_gives_up():
    sim, net, client, server = make_pair(rpc_kw={"timeout": 0.5, "max_retries": 1})
    server.crash()
    errors = []

    def caller():
        try:
            yield from client.call("server", "ping")
        except RpcTimeout:
            errors.append(sim.now)

    sim.spawn(caller())
    sim.run()
    assert errors  # gave up after timeout + 1 retry


def test_backoff_is_capped_at_30s():
    """Retransmission intervals double but never exceed 30 s, so a
    hard-mounted client polls a dead server at a bounded rate."""
    sim, net, client, server = make_pair(rpc_kw={"timeout": 10.0})
    server.crash()

    def caller():
        yield from client.call("server", "ping", hard=True)

    sim.spawn(caller())
    sim.run(until=200.0)
    retries = client.client_stats.get("ping.retransmit")
    # 10 + 20 + 30 + 30 + ... : by t=200 there are ~7 retransmissions;
    # without the cap there would be only ~4 (10+20+40+80)
    assert retries >= 6


def test_per_call_retry_override():
    sim, net, client, server = make_pair(rpc_kw={"timeout": 0.2, "max_retries": 9, "backoff": 1.0})
    server.crash()
    errors = []

    def caller():
        try:
            yield from client.call("server", "ping", max_retries=1)
        except RpcTimeout:
            errors.append(sim.now)

    sim.spawn(caller())
    sim.run()
    # 2 attempts x 0.2 s, not 10 attempts
    assert errors and errors[0] == pytest.approx(0.4, abs=0.05)


def test_dup_cache_bounded():
    sim, net, client, server = make_pair(rpc_kw={"dup_cache_size": 4})

    def echo(src, x):
        yield sim.timeout(0)
        return x

    server.register("echo", echo)

    def caller():
        for i in range(20):
            value = yield from client.call("server", "echo", i)
            assert value == i

    proc = sim.spawn(caller())
    sim.run_until(proc, limit=100)
    assert len(server._dup_cache._done) <= 4


def test_calls_carry_data_sized_payloads():
    """A 4 KB write costs ~4 KB on the wire; a getattr costs ~200 B."""
    sim, net, client, server = make_pair()

    def sink(src, data):
        yield sim.timeout(0)
        return None

    def tiny(src):
        yield sim.timeout(0)
        return None

    server.register("sink", sink)
    server.register("tiny", tiny)

    def caller():
        yield from client.call("server", "tiny")
        small = net.stats.get("bytes")
        yield from client.call("server", "sink", b"x" * 4096)
        large = net.stats.get("bytes") - small
        assert large > 4096
        assert small < 1000

    proc = sim.spawn(caller())
    sim.run_until(proc, limit=100)
    assert proc.ok


def test_concurrent_calls_from_one_endpoint():
    sim, net, client, server = make_pair()

    def slow_echo(src, x):
        yield sim.timeout(0.1)
        return x * 10

    server.register("echo", slow_echo)
    results = []

    def caller(i):
        value = yield from client.call("server", "echo", i)
        results.append(value)

    for i in range(5):
        sim.spawn(caller(i))
    sim.run()
    assert sorted(results) == [0, 10, 20, 30, 40]
