"""Crash semantics of the RPC endpoint: the duplicate-request cache
and in-flight handlers across a power cycle.

The subtle case: a ``_serve`` coroutine survives ``crash()`` (the
simulator does not kill processes), finishes its handler after
``reboot()``, and must then recognize that its world is gone — its
reply reflects pre-crash state, was never acknowledged, and must not
repopulate the post-reboot duplicate cache (a retransmission would be
answered from the cache instead of re-executed, silently breaking
at-least-once semantics).
"""

from repro.net import Network, NetworkConfig, RpcConfig, RpcEndpoint
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    net = Network(sim, NetworkConfig())
    client = RpcEndpoint(sim, net, "client", config=RpcConfig())
    server = RpcEndpoint(sim, net, "server", config=RpcConfig())
    return sim, net, client, server


def run_call(sim, client, *call_args, **call_kw):
    result = {}

    def caller():
        result["value"] = yield from client.call(*call_args, **call_kw)

    sim.spawn(caller())
    sim.run()
    return result


def test_crash_flushes_dup_cache_and_discards_dead_epoch_reply():
    sim, net, client, server = make_pair()
    calls = {"n": 0}

    def slow(src):
        calls["n"] += 1
        mine = calls["n"]
        yield sim.timeout(1.0)
        return "execution-%d" % mine

    server.register("slow", slow)
    served = []
    server.serve_listeners.append(
        lambda proc, src, args, result, error, now: served.append(result)
    )

    def nemesis():
        # crash mid-handler, reboot before the handler's timeout fires
        yield sim.timeout(0.5)
        server.crash()
        yield sim.timeout(0.2)
        server.reboot()

    sim.spawn(nemesis())
    result = run_call(sim, client, "server", "slow", hard=True)

    # the retransmission re-executed the handler (dup cache was really
    # flushed) and the client saw the post-reboot execution
    assert calls["n"] == 2
    assert result["value"] == "execution-2"
    # the dead-epoch execution was never acknowledged: observers (the
    # consistency oracle, keepalive) saw exactly one serve
    assert served == ["execution-2"]


def test_crash_bumps_boot_epoch_and_clears_pending():
    sim, net, client, server = make_pair()
    assert server.boot_epoch == 0
    server.crash()
    assert server.boot_epoch == 1
    server.reboot()
    server.crash()
    assert server.boot_epoch == 2


def test_dup_cache_still_suppresses_reexecution_without_a_crash():
    """Control: with no crash, a retransmitted request is answered from
    the cache, not re-executed."""
    sim, net, client, server = make_pair()
    calls = {"n": 0}

    def once(src):
        calls["n"] += 1
        yield sim.timeout(0.001)
        return calls["n"]

    server.register("once", once)
    first = run_call(sim, client, "server", "once")
    assert first["value"] == 1

    # resend the same xid by hand: the dup cache must answer it
    replies = []

    def resend():
        msg_xid = 1  # the first call's xid
        from repro.net.rpc import _Call

        msg = _Call(xid=msg_xid, src="client", proc="once", args=())
        yield from server._serve(msg)
        replies.append(server._dup_cache._done[("client", msg_xid)].result)

    sim.spawn(resend())
    sim.run()
    assert calls["n"] == 1
    assert replies == [1]
