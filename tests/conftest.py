"""Shared test helpers."""

import pytest

from repro.sim import Simulator


class SimRunner:
    """Drive simulation coroutines to completion from plain test code."""

    def __init__(self):
        self.sim = Simulator()

    def run(self, gen, limit=100000.0):
        """Run one coroutine to completion; return its value or re-raise."""
        box = {}

        def wrapper():
            box["value"] = yield from gen

        proc = self.sim.spawn(wrapper())
        self.sim.run_until(proc, limit=limit)
        if not proc.triggered:
            raise TimeoutError("coroutine did not finish before limit")
        if proc.exception is not None:
            proc.defuse()  # its dispatch may still be queued
            raise proc.exception
        return box.get("value")

    def run_all(self, *gens, limit=100000.0):
        """Run several coroutines concurrently; returns their values."""
        procs = [self.sim.spawn(self._wrap(g)) for g in gens]
        from repro.sim import AllOf

        gate = AllOf(self.sim, procs)
        gate.defuse()
        self.sim.run_until(gate, limit=limit)
        values = []
        for proc in procs:
            if proc.exception is not None:
                proc.defuse()
                raise proc.exception
            values.append(proc.value)
        return values

    @staticmethod
    def _wrap(gen):
        def wrapper():
            result = yield from gen
            return result

        return wrapper()


@pytest.fixture
def runner():
    return SimRunner()
