"""Tests for the ``--only SCENARIO`` bench filter."""

from repro.bench.engine_bench import run_engine_suite
from repro.bench.workloads import run_workload_suite


def test_engine_only_exact_name():
    results = run_engine_suite(quick=True, repeats=1, only="timeout-chain")
    assert [r["name"] for r in results] == ["timeout-chain"]


def test_engine_only_fnmatch_pattern():
    results = run_engine_suite(quick=True, repeats=1, only="timer-*")
    assert [r["name"] for r in results] == ["timer-fan"]


def test_engine_only_no_match_is_empty():
    assert run_engine_suite(quick=True, repeats=1, only="no-such-*") == []


def test_workloads_only_no_match_runs_nothing():
    # the filter decides before the scenario runs, so a progress probe
    # plus an impossible pattern proves nothing executed
    ran = []
    results = run_workload_suite(
        quick=True, progress=ran.append, only="no-such-scenario"
    )
    assert results == []
    assert ran == []
