"""Golden-digest conformance: the optimized engine must compute the
exact artifacts the pre-optimization engine did.

``tests/golden/golden.json`` holds sha256 digests of every paper-facing
table/figure (rendered text) and the trace digests of the traced
scenarios, captured at fixed seeds before the engine fast path landed.
These tests recompute each one; any schedule-visible behavior change
fails with the scenario's name.

Regenerate (only after an *intentional* behavior change) with::

    PYTHONPATH=src python -m repro golden --write -j4
"""

import json
import os

import pytest

from repro.bench import (
    GOLDEN_OUTPUTS,
    GOLDEN_TRACED,
    compute_output_digests,
    compute_trace_digests,
    default_golden_path,
    write_golden,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "golden", "golden.json")


def _load():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def test_golden_file_is_complete():
    ref = _load()
    assert ref["schema"] == "repro-golden/1"
    assert set(ref["outputs"]) == set(GOLDEN_OUTPUTS)
    assert set(ref["trace_digests"]) == set(GOLDEN_TRACED)


@pytest.mark.parametrize("name", sorted(GOLDEN_OUTPUTS))
def test_output_digest_matches_golden(name):
    ref = _load()["outputs"]
    fresh = compute_output_digests([name])
    assert fresh[name] == ref[name], (
        "rendered output of %r changed vs the pre-optimization golden" % name
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_TRACED))
def test_trace_digest_matches_golden(name):
    ref = _load()["trace_digests"]
    fresh = compute_trace_digests([name])
    assert fresh[name] == ref[name], (
        "trace digest of %r changed vs the pre-optimization golden" % name
    )


def test_default_golden_path_is_the_committed_file():
    assert os.path.samefile(default_golden_path(), GOLDEN_PATH)


def regenerate():  # pragma: no cover - maintenance helper
    from repro.parallel import default_jobs

    print("wrote %s" % write_golden(GOLDEN_PATH, jobs=default_jobs()))
