"""Tests for the BENCH_*.json schema builder, validator, and the CI
regression gate."""

import json
import os

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_document,
    compare_to_baseline,
    validate_bench_document,
)
from repro.bench.schema import write_bench_document


def _scenario(name="s", rate=1000, digest=None):
    return {
        "name": name,
        "params": {"n": 10},
        "ops": 100,
        "sim_seconds": 1.0,
        "wall_seconds": 0.1,
        "events_per_sec": rate,
        "trace_digest": digest,
    }


def test_bench_document_shape():
    doc = bench_document("engine", [_scenario()], quick=True)
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["suite"] == "engine"
    assert doc["quick"] is True
    assert "python" in doc["host"]
    assert validate_bench_document(doc) == []


def test_validator_catches_problems():
    doc = bench_document("engine", [_scenario()], quick=False)
    doc["schema"] = "bogus/9"
    assert any("schema" in p for p in validate_bench_document(doc))

    doc = bench_document("neither", [_scenario()], quick=False)
    assert any("suite" in p for p in validate_bench_document(doc))

    bad = _scenario()
    del bad["ops"]
    doc = bench_document("engine", [bad], quick=False)
    assert any("ops" in p for p in validate_bench_document(doc))

    doc = bench_document("engine", [_scenario("a"), _scenario("a")], quick=False)
    assert any("duplicate" in p for p in validate_bench_document(doc))

    doc = bench_document("engine", [_scenario(digest="tooshort")], quick=False)
    assert any("trace_digest" in p for p in validate_bench_document(doc))

    doc = bench_document("engine", [_scenario(digest="a" * 64)], quick=False)
    assert validate_bench_document(doc) == []

    doc = bench_document("engine", [], quick=False)
    assert any("scenarios" in p for p in validate_bench_document(doc))


def test_parallel_block_is_optional_and_validated():
    block = {
        "jobs": 2,
        "cells": [{"name": "s", "kind": "bench-engine", "wall_seconds": 0.1}],
        "total_wall_seconds": 0.1,
        "serial_cell_seconds": 0.1,
        "speedup": 1.0,
    }
    doc = bench_document("engine", [_scenario()], quick=True, parallel=block)
    assert doc["parallel"] == block
    assert validate_bench_document(doc) == []
    # absent block stays absent (serial artifacts unchanged byte-for-byte)
    plain = bench_document("engine", [_scenario()], quick=True)
    assert "parallel" not in plain

    bad = json.loads(json.dumps(doc))
    bad["parallel"]["jobs"] = 0
    assert any("jobs" in p for p in validate_bench_document(bad))
    bad = json.loads(json.dumps(doc))
    bad["parallel"]["cells"] = [{"kind": "bench-engine"}]
    assert any("cells" in p for p in validate_bench_document(bad))
    bad = json.loads(json.dumps(doc))
    bad["parallel"]["speedup"] = "fast"
    assert any("speedup" in p for p in validate_bench_document(bad))


def test_wall_seconds_repeats_is_optional_but_typed():
    sc = _scenario()
    sc["wall_seconds_repeats"] = [0.1, 0.2, 0.3]
    doc = bench_document("engine", [sc], quick=False)
    assert validate_bench_document(doc) == []
    sc = _scenario()
    sc["wall_seconds_repeats"] = "not-a-list"
    doc = bench_document("engine", [sc], quick=False)
    assert any("wall_seconds_repeats" in p for p in validate_bench_document(doc))


def test_engine_cell_records_median_of_repeats():
    from repro.bench import run_engine_cell

    cell = run_engine_cell("event-pingpong", quick=True, repeats=3)
    import statistics

    repeats = cell["wall_seconds_repeats"]
    assert len(repeats) == 3
    # rounding is monotonic, so the median of the rounded repeats is the
    # rounded raw median the cell reports
    assert cell["wall_seconds"] == statistics.median(repeats)
    assert cell["events_per_sec"] == pytest.approx(
        cell["ops"] / cell["wall_seconds"], rel=1e-3
    )


def test_sweep_scenarios_present_in_full_suite_only():
    from repro.bench.workloads import SWEEP_NS, _scenarios

    full_names = [s["name"] for s in _scenarios(quick=False)]
    quick_names = [s["name"] for s in _scenarios(quick=True)]
    for n in SWEEP_NS:
        assert "sweep-n%d" % n in full_names
        assert "sweep-n%d" % n not in quick_names
    # --n 10000 style opt-ins ride as extra scenarios without digests
    extra = [s for s in _scenarios(quick=False, extra_ns=(10000,))
             if s["name"] == "sweep-n10000"]
    assert len(extra) == 1
    assert extra[0]["digest"] is None
    assert extra[0]["params"]["n_clients"] == 10000


def test_compare_to_baseline_gate():
    base = bench_document("engine", [_scenario("a", 1000), _scenario("b", 1000)])
    # within tolerance: ok
    fresh = bench_document("engine", [_scenario("a", 850), _scenario("b", 1200)])
    ok, lines = compare_to_baseline(fresh, base, tolerance=0.20)
    assert ok
    assert len(lines) == 2
    # beyond tolerance: regression
    fresh = bench_document("engine", [_scenario("a", 700), _scenario("b", 1000)])
    ok, lines = compare_to_baseline(fresh, base, tolerance=0.20)
    assert not ok
    assert any("REGRESSION" in line for line in lines)


def test_compare_reports_new_and_missing_scenarios_non_fatally():
    base = bench_document("engine", [_scenario("old", 1000)])
    fresh = bench_document("engine", [_scenario("new", 1000)])
    ok, lines = compare_to_baseline(fresh, base, tolerance=0.20)
    assert ok  # suites may grow/shrink without failing the gate
    assert any("new scenario" in line for line in lines)
    assert any("missing" in line for line in lines)


def test_write_bench_document_is_deterministic(tmp_path):
    doc = bench_document("engine", [_scenario()], quick=True)
    p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
    write_bench_document(doc, p1)
    write_bench_document(doc, p2)
    b1, b2 = open(p1).read(), open(p2).read()
    assert b1 == b2
    assert b1.endswith("\n")
    assert json.loads(b1) == doc


def test_committed_bench_documents_are_valid():
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    for fname, suite in (
        ("BENCH_engine.json", "engine"),
        ("BENCH_workloads.json", "workloads"),
    ):
        path = os.path.join(root, fname)
        if not os.path.exists(path):
            pytest.fail("%s is not committed at the repo root" % fname)
        with open(path) as fh:
            doc = json.load(fh)
        assert validate_bench_document(doc) == [], fname
        assert doc["suite"] == suite
