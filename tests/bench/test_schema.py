"""Tests for the BENCH_*.json schema builder, validator, and the CI
regression gate."""

import json
import os

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_document,
    compare_to_baseline,
    validate_bench_document,
)
from repro.bench.schema import write_bench_document


def _scenario(name="s", rate=1000, digest=None):
    return {
        "name": name,
        "params": {"n": 10},
        "ops": 100,
        "sim_seconds": 1.0,
        "wall_seconds": 0.1,
        "events_per_sec": rate,
        "trace_digest": digest,
    }


def test_bench_document_shape():
    doc = bench_document("engine", [_scenario()], quick=True)
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["suite"] == "engine"
    assert doc["quick"] is True
    assert "python" in doc["host"]
    assert validate_bench_document(doc) == []


def test_validator_catches_problems():
    doc = bench_document("engine", [_scenario()], quick=False)
    doc["schema"] = "bogus/9"
    assert any("schema" in p for p in validate_bench_document(doc))

    doc = bench_document("neither", [_scenario()], quick=False)
    assert any("suite" in p for p in validate_bench_document(doc))

    bad = _scenario()
    del bad["ops"]
    doc = bench_document("engine", [bad], quick=False)
    assert any("ops" in p for p in validate_bench_document(doc))

    doc = bench_document("engine", [_scenario("a"), _scenario("a")], quick=False)
    assert any("duplicate" in p for p in validate_bench_document(doc))

    doc = bench_document("engine", [_scenario(digest="tooshort")], quick=False)
    assert any("trace_digest" in p for p in validate_bench_document(doc))

    doc = bench_document("engine", [_scenario(digest="a" * 64)], quick=False)
    assert validate_bench_document(doc) == []

    doc = bench_document("engine", [], quick=False)
    assert any("scenarios" in p for p in validate_bench_document(doc))


def test_compare_to_baseline_gate():
    base = bench_document("engine", [_scenario("a", 1000), _scenario("b", 1000)])
    # within tolerance: ok
    fresh = bench_document("engine", [_scenario("a", 850), _scenario("b", 1200)])
    ok, lines = compare_to_baseline(fresh, base, tolerance=0.20)
    assert ok
    assert len(lines) == 2
    # beyond tolerance: regression
    fresh = bench_document("engine", [_scenario("a", 700), _scenario("b", 1000)])
    ok, lines = compare_to_baseline(fresh, base, tolerance=0.20)
    assert not ok
    assert any("REGRESSION" in line for line in lines)


def test_compare_reports_new_and_missing_scenarios_non_fatally():
    base = bench_document("engine", [_scenario("old", 1000)])
    fresh = bench_document("engine", [_scenario("new", 1000)])
    ok, lines = compare_to_baseline(fresh, base, tolerance=0.20)
    assert ok  # suites may grow/shrink without failing the gate
    assert any("new scenario" in line for line in lines)
    assert any("missing" in line for line in lines)


def test_write_bench_document_is_deterministic(tmp_path):
    doc = bench_document("engine", [_scenario()], quick=True)
    p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
    write_bench_document(doc, p1)
    write_bench_document(doc, p2)
    b1, b2 = open(p1).read(), open(p2).read()
    assert b1 == b2
    assert b1.endswith("\n")
    assert json.loads(b1) == doc


def test_committed_bench_documents_are_valid():
    root = os.path.join(os.path.dirname(__file__), "..", "..")
    for fname, suite in (
        ("BENCH_engine.json", "engine"),
        ("BENCH_workloads.json", "workloads"),
    ):
        path = os.path.join(root, fname)
        if not os.path.exists(path):
            pytest.fail("%s is not committed at the repo root" % fname)
        with open(path) as fh:
            doc = json.load(fh)
        assert validate_bench_document(doc) == [], fname
        assert doc["suite"] == suite
