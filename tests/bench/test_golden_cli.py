"""The pooled golden regeneration/check path (``python -m repro golden``).

The real 15-cell sweep takes minutes, so these tests shrink the golden
scenario registries to fast fakes and exercise the mechanics: write,
re-check, drift detection, and the refuse-to-write-partial rule.
"""

import json

import pytest

from repro.bench import check_golden, run_golden, write_golden
from repro.bench import golden as golden_mod


@pytest.fixture()
def tiny_registry(monkeypatch):
    monkeypatch.setattr(
        golden_mod, "GOLDEN_OUTPUTS", {"fake-table": lambda: "table text"}
    )
    monkeypatch.setattr(
        golden_mod, "GOLDEN_TRACED", {"fake-traced": lambda: ["d1", "d2"]}
    )


def test_run_golden_collects_both_families(tiny_registry):
    outputs, traced, errors = run_golden(jobs=1)
    assert errors == []
    assert set(outputs) == {"fake-table"}
    assert len(outputs["fake-table"]) == 64
    assert traced == {"fake-traced": ["d1", "d2"]}


def test_write_then_check_round_trips(tiny_registry, tmp_path):
    path = str(tmp_path / "golden.json")
    write_golden(path, jobs=1)
    doc = json.load(open(path))
    assert doc["schema"] == "repro-golden/1"
    ok, lines = check_golden(path, jobs=1)
    assert ok
    assert all(line.startswith("ok") for line in lines)


def test_check_reports_drift_new_and_missing(tiny_registry, tmp_path):
    path = str(tmp_path / "golden.json")
    write_golden(path, jobs=1)
    doc = json.load(open(path))
    doc["outputs"]["fake-table"] = "0" * 64
    doc["trace_digests"]["stale-entry"] = ["gone"]
    with open(path, "w") as fh:
        json.dump(doc, fh)
    ok, lines = check_golden(path, jobs=1)
    assert not ok
    assert any(line.startswith("CHANGED") and "fake-table" in line for line in lines)
    assert any(line.startswith("MISSING") and "stale-entry" in line for line in lines)

    del doc["outputs"]["fake-table"]
    with open(path, "w") as fh:
        json.dump(doc, fh)
    ok, lines = check_golden(path, jobs=1)
    assert not ok
    assert any(line.startswith("NEW") and "fake-table" in line for line in lines)


def test_write_refuses_partial_output(tiny_registry, tmp_path, monkeypatch):
    def explode():
        raise RuntimeError("scenario broke")

    monkeypatch.setattr(golden_mod, "GOLDEN_OUTPUTS", {"fake-table": explode})
    path = str(tmp_path / "golden.json")
    with pytest.raises(RuntimeError, match="refusing to write"):
        write_golden(path, jobs=1)
    assert not (tmp_path / "golden.json").exists()


def test_check_surfaces_cell_errors_as_failures(tiny_registry, tmp_path, monkeypatch):
    path = str(tmp_path / "golden.json")
    write_golden(path, jobs=1)

    def explode():
        raise RuntimeError("scenario broke")

    monkeypatch.setattr(golden_mod, "GOLDEN_OUTPUTS", {"fake-table": explode})
    ok, lines = check_golden(path, jobs=1)
    assert not ok
    assert any(line.startswith("ERROR") and "fake-table" in line for line in lines)
