"""Smoke tests for the benchmark suites themselves: deterministic op
counts, stable schedule digests, and the quick workload path."""

import pytest

from repro.bench import ENGINE_SCENARIOS
from repro.bench.engine_bench import _schedule_digest
from repro.bench.workloads import cluster_point
from repro.sim import Simulator


@pytest.mark.parametrize("name", sorted(ENGINE_SCENARIOS))
def test_engine_scenario_ops_are_arithmetic(name):
    body, _full_n, _quick_n, digest_n = ENGINE_SCENARIOS[name]
    ops1 = body(Simulator(), digest_n, None)
    ops2 = body(Simulator(), digest_n, None)
    assert ops1 == ops2 > 0


@pytest.mark.parametrize("name", sorted(ENGINE_SCENARIOS))
def test_engine_schedule_digest_is_stable(name):
    body, _full_n, _quick_n, digest_n = ENGINE_SCENARIOS[name]
    d1 = _schedule_digest(name, body, digest_n)
    d2 = _schedule_digest(name, body, digest_n)
    assert d1 == d2
    assert len(d1) == 64


def test_engine_scenario_digests_are_distinct():
    digests = {
        name: _schedule_digest(name, body, digest_n)
        for name, (body, _f, _q, digest_n) in ENGINE_SCENARIOS.items()
    }
    assert len(set(digests.values())) == len(digests)


def test_cluster_point_runs_every_protocol_small():
    for protocol in ("nfs", "snfs", "rfs", "kent", "lease"):
        bed, sim_seconds = cluster_point(protocol, 2, iterations=1)
        assert sim_seconds > 0
        assert bed.total_rpcs() > 0
        assert len(bed.client_hosts) == 2


def test_cluster_point_is_deterministic():
    a = cluster_point("snfs", 3, iterations=1)
    b = cluster_point("snfs", 3, iterations=1)
    assert a[1] == b[1]
    assert a[0].total_rpcs() == b[0].total_rpcs()
