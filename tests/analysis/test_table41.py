"""The Table 4-1 conformance pass: clean on the real table, loud on
deliberately broken ones."""

import pytest

from repro.analysis.table41 import (
    EVENTS,
    EXPECTED,
    IMPOSSIBLE,
    STATES,
    conformance_findings,
    enumerate_transitions,
)
from repro.snfs.state_table import Callback, FileState, StateTable


def test_spec_covers_the_full_alphabet():
    assert len(STATES) == 7
    assert len(EVENTS) == 8
    assert set(EXPECTED) == {(s, e) for s in STATES for e in EVENTS}


def test_impossible_cells_are_exactly_the_closed_same_ones():
    blanks = {k for k, v in EXPECTED.items() if v is IMPOSSIBLE}
    assert blanks == {
        ("CLOSED", ("open", "same", False)),
        ("CLOSED", ("open", "same", True)),
        ("CLOSED", ("close", "same", False)),
        ("CLOSED", ("close", "same", True)),
    }


def test_live_state_table_is_conformant():
    assert conformance_findings(StateTable) == []


def test_default_factory_is_the_live_table():
    assert conformance_findings() == []


def test_enumeration_visits_every_cell():
    rows = list(enumerate_transitions(StateTable))
    assert len(rows) == 7 * 8
    checked = [r for r in rows if r[2] is not IMPOSSIBLE]
    assert len(checked) == 7 * 8 - 4
    assert all(r[3] is not None for r in checked)


def test_missing_invalidate_callback_is_detected():
    class NoInvalidate(StateTable):
        def _open_transition(self, entry, client, write):
            cbs = super()._open_transition(entry, client, write)
            return [cb for cb in cbs if cb.writeback or not cb.invalidate]

    diffs = conformance_findings(NoInvalidate)
    assert any("ONE_READER x open_write_new" in d for d in diffs)
    assert any("callbacks" in d for d in diffs)


def test_lost_dirty_state_is_detected():
    class ForgetsDirty(StateTable):
        def _close_transition(self, entry, client, write, was_caching):
            super()._close_transition(entry, client, write, was_caching)
            if entry.state is FileState.CLOSED_DIRTY:
                entry.state = FileState.CLOSED

    assert conformance_findings(ForgetsDirty)


def test_stuck_version_counter_is_detected():
    class StuckVersions(StateTable):
        def _next_version(self):
            return self._last_version

    diffs = conformance_findings(StuckVersions)
    assert any("bump" in d for d in diffs)


def test_caching_during_write_sharing_is_detected():
    class AlwaysCaches(StateTable):
        def open_file(self, key, client, write):
            grant, cbs = super().open_file(key, client, write)
            grant.cache_enabled = True
            return grant, cbs

    diffs = conformance_findings(AlwaysCaches)
    assert any("cache" in d for d in diffs)


def test_spurious_callback_is_detected():
    class ChattyTable(StateTable):
        def _open_transition(self, entry, client, write):
            cbs = super()._open_transition(entry, client, write)
            return cbs + [Callback("clientA", writeback=True, invalidate=True)]

    assert conformance_findings(ChattyTable)
