"""The call-graph builder: may-yield propagation and method resolution."""

import os

import pytest

from repro.analysis.callgraph import index_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHAIN = os.path.join(FIXTURES, "callgraph_chain.py")


@pytest.fixture(scope="module")
def index():
    return index_paths([CHAIN])


def fn(index, qualname):
    for (path, qn), info in index.functions.items():
        if qn == qualname:
            return info
    raise AssertionError("no function %r in index" % qualname)


def test_direct_yield_may_yield(index):
    assert index.may_yield(fn(index, "leaf_waits"))


def test_may_yield_propagates_through_yield_from(index):
    assert index.may_yield(fn(index, "via_yield_from"))
    assert index.may_yield(fn(index, "twice_removed"))


def test_pure_builtin_yield_from_does_not_propagate(index):
    # sorted() is a terminal non-yielding callee by design
    info = fn(index, "pure_chain")
    assert info.is_generator
    assert not index.may_yield(info)


def test_bare_yield_marker_is_not_a_suspension(index):
    info = fn(index, "marker_only")
    assert info.is_generator
    assert info.bare_yields and not info.local_suspends
    assert not index.may_yield(info)
    assert index.suspension_points(info) == []


def test_spawn_is_a_root_not_a_suspension(index):
    info = fn(index, "spawner")
    assert len(info.spawn_sites) == 1
    assert not info.is_generator  # plain function: spawning never blocks


def test_after_is_a_root_not_a_suspension(index):
    info = fn(index, "timer")
    assert len(info.after_sites) == 1
    assert not info.is_generator


def test_unresolvable_callee_is_conservatively_yielding(index):
    assert index.may_yield(fn(index, "calls_unknown"))


def test_self_method_resolves_through_the_mro(index):
    sub_open = fn(index, "SubPolicy.on_open")
    (target,) = index.resolve_call(sub_open.yieldfroms[0].value, sub_open)
    assert target.qualname == "BasePolicy.helper"
    assert index.may_yield(sub_open)


def test_base_marker_override_contrast(index):
    # the base's on_open is the dead-code idiom; the subclass's
    # genuinely suspends — resolution keeps them distinct
    assert not index.may_yield(fn(index, "BasePolicy.on_open"))
    assert index.may_yield(fn(index, "SubPolicy.on_open"))


def test_super_call_resolves_to_the_next_class(index):
    wrapper = fn(index, "DeepPolicy.wrapper")
    (target,) = index.resolve_call(wrapper.yieldfroms[0].value, wrapper)
    assert target.qualname == "SubPolicy.on_open"
    assert index.may_yield(wrapper)


def test_subclasses_of_walks_transitively(index):
    names = [c.name for c in index.subclasses_of("BasePolicy")]
    assert names == ["SubPolicy", "DeepPolicy"]


def test_suspension_points_are_source_ordered(index):
    info = fn(index, "leaf_waits")
    points = index.suspension_points(info)
    assert [type(p).__name__ for p in points] == ["Yield"]


def test_regions_cover_the_definition(index):
    path, qualname, first, last = fn(index, "SubPolicy.on_open").region()
    assert path == CHAIN
    assert qualname == "SubPolicy.on_open"
    assert first < last
