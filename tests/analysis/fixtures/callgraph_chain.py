"""Fixture for the call-graph / may-yield analysis."""


def leaf_waits(sim):
    yield sim.timeout(1)


def via_yield_from(sim):
    yield from leaf_waits(sim)


def twice_removed(sim):
    yield from via_yield_from(sim)


def pure_chain(items):
    # yield from over a pure builtin's result: resolvable, never waits
    yield from sorted(items)


def marker_only():
    # the dead-code idiom: a generator that never actually suspends
    return 42
    yield  # pragma: no cover


def spawner(sim):
    # spawn creates a process root; the caller does not suspend
    sim.spawn(leaf_waits(sim))
    return None


def timer(sim):
    sim.after(5.0, leaf_waits)
    return None


def calls_unknown(sim):
    # the callee is not in the index: conservatively may-yield
    yield from mystery_import_time_thing(sim)  # noqa: F821


class BasePolicy:
    def on_open(self, g):
        return None
        yield  # pragma: no cover

    def helper(self):
        yield self.waitable()

    def waitable(self):
        return object()


class SubPolicy(BasePolicy):
    def on_open(self, g):
        yield from self.helper()


class DeepPolicy(SubPolicy):
    def wrapper(self, g):
        yield from super().on_open(g)
