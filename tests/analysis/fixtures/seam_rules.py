"""Fixture for the SEAM001-SEAM003 seam-contract rules.

Self-contained stand-ins for the real base classes: the checker keys
on the class *names* ``ConsistencyPolicy`` and ``RemoteFsServer``.
"""


class ConsistencyPolicy:
    crash_recovery = False

    def __init__(self, client):
        self.client = client

    def on_open(self, g, mode, reply):
        return None
        yield  # pragma: no cover

    def on_close(self, g):
        return None
        yield  # pragma: no cover

    def attr_ttl(self, g):
        return 0.0

    def call(self, proc, *args, **kwargs):
        reply = yield from self.client.rpc.call(proc, *args)
        return reply

    def reclaim(self, recovering):
        return None
        yield  # pragma: no cover


class GoodPolicy(ConsistencyPolicy):
    crash_recovery = True

    def on_open(self, g, mode, reply):
        return reply
        yield  # pragma: no cover

    def attr_ttl(self, g, slack=1.0):
        return slack

    def reclaim(self, recovering):
        yield self.wait()


class BadArityPolicy(ConsistencyPolicy):
    # SEAM001: base passes 3 positional args, this accepts 1
    def on_open(self, g):
        return None
        yield  # pragma: no cover


class NotAGeneratorPolicy(ConsistencyPolicy):
    # SEAM001: on_close is a coroutine hook but this is a plain def
    def on_close(self, g):
        return None


class UndeclaredReclaimPolicy(ConsistencyPolicy):
    # SEAM002: overrides reclaim() without crash_recovery = True
    def reclaim(self, recovering):
        yield self.wait()


class DeclaredNoReclaimPolicy(ConsistencyPolicy):
    # SEAM002: declares the capability but never implements it
    crash_recovery = True


class BypassPolicy(ConsistencyPolicy):
    # SEAM002: touches rpc.call outside call/reclaim/on_server_recovering
    def on_open(self, g, mode, reply):
        fresh = yield from self.client.rpc.call("GETATTR", g)
        return fresh


class RemoteFsServer:
    def __init__(self, host):
        self.host = host
        self._tables = {}

    def on_server_crash(self):
        self._tables = {}

    def on_server_reboot(self):
        self.epoch = 0

    def proc_getattr(self, src, fh):
        return fh
        yield  # pragma: no cover


class GoodServer(RemoteFsServer):
    def proc_open(self, src, fh, mode):
        entry = yield from self.lookup(fh)
        return entry


class BadProcServer(RemoteFsServer):
    # SEAM001 x2: missing src, and not a generator
    def proc_open(self, fh, mode):
        return fh


class HostHookServer(RemoteFsServer):
    # SEAM003: host lifecycle belongs to the core
    def on_host_crash(self):
        return None


class TableResetServer(RemoteFsServer):
    # SEAM003: wholesale-resets crash-state attrs off the crash path
    def on_server_crash(self):
        self._tables = {}

    def proc_reset(self, src):
        self._tables = {}
        return None
        yield  # pragma: no cover

    def maintenance(self):
        self._tables.clear()
