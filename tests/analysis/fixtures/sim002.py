"""SIM002 fixture: process functions called but never driven."""


def worker(sim):
    yield sim.timeout(1.0)


def bad_caller(sim):
    worker(sim)  # SIM002: builds a generator and drops it


def good_caller(sim):
    yield from worker(sim)


def good_spawner(sim):
    sim.spawn(worker(sim))


class Service:
    def loop(self, sim):
        yield sim.timeout(1.0)

    def bad_start(self, sim):
        self.loop(sim)  # SIM002

    def good_start(self, sim):
        sim.spawn(self.loop(sim))

    def suppressed_start(self, sim):
        self.loop(sim)  # lint: ok=SIM002 — fixture: suppressed occurrence
