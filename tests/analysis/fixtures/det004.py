"""DET004 fixture: RNGs constructed without a seed."""
import random
from random import Random, SystemRandom


def bad_unseeded():
    return random.Random()  # DET004


def bad_unseeded_bare():
    return Random()  # DET004


def bad_system():
    return SystemRandom()  # DET004: unseedable by design


def good_seeded(seed):
    return random.Random(seed)


def suppressed():
    return random.Random()  # lint: ok=DET004 — fixture: suppressed occurrence
