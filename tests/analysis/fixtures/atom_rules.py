"""Fixture for the ATOM001-ATOM004 atomicity rules.

Each method demonstrates one rule (or one guard that defuses it); the
tests assert exactly which rules fire and where.  The ``self.sim``
waitables are stand-ins — the analyzer only needs the yields.
"""


class Table:
    def __init__(self, sim, lock):
        self.sim = sim
        self.lock = lock
        self.entries = {}
        self.version = 0
        self.cache = FakeCache()

    # ATOM001: read, unguarded yield, write — lost update
    def lost_update(self, key):
        count = self.entries.get(key, 0)
        yield self.sim.timeout(1)
        self.entries[key] = count + 1

    # ATOM002: write, unguarded yield, write — torn multi-step update
    def torn_update(self, key):
        self.entries[key] = "half"
        yield self.sim.timeout(1)
        self.entries[key] = "done"

    # ATOM003: write, unguarded yield, read — stale re-read
    def stale_reread(self):
        self.version = self.version + 0  # plain write (no aug RMW)
        yield self.sim.timeout(1)
        return self.version

    # ATOM004: snapshot iteration with yields while mutating the dict
    # (the mutation precedes the yield, so only the loop-carried
    # crossing — iteration N's yield to iteration N+1's pop — races)
    def sweep(self):
        for key in list(self.entries):
            self.entries.pop(key, None)
            yield self.sim.timeout(1)

    # guarded by a lock: acquire/release bracket the yield
    def locked_update(self, key):
        yield self.lock.acquire()
        count = self.entries.get(key, 0)
        yield self.sim.timeout(1)
        self.entries[key] = count + 1
        self.lock.release()

    # guarded by a flush span: the stamp protocol covers the crossing
    def flushed_update(self, key):
        buf = self.entries.get(key)
        self.cache.flush_begin(buf)
        yield self.sim.timeout(1)
        self.entries[key] = buf
        self.cache.flush_end(buf)

    # a suppressed occurrence: stays out of atomicity_findings()
    def reviewed_update(self, key):
        count = self.entries.get(key, 0)
        yield self.sim.timeout(1)
        self.entries[key] = count  # lint: ok=ATOM001 — fixture: reviewed

    # no shared state at all: local variables only
    def local_only(self):
        total = 0
        yield self.sim.timeout(1)
        total += 1
        return total


class FakeCache:
    def flush_begin(self, buf):
        return buf

    def flush_end(self, buf):
        return buf


class Aliased:
    """Shared access through a local alias and an accessor helper."""

    def __init__(self, sim):
        self.sim = sim
        self._entries = {}

    def _entry(self, key):
        entry = self._entries.setdefault(key, Entry())
        return entry

    # the alias carries the shared root: read via accessor result,
    # yield, write via the same alias -> ATOM001 on entry.count
    def bump(self, key):
        entry = self._entry(key)
        count = entry.count
        yield self.sim.timeout(1)
        entry.count = count + 1


class Entry:
    def __init__(self):
        self.count = 0
