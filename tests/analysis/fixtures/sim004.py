"""SIM004 fixture: failing an event that may never have a waiter."""


def bad_fail(done, exc):
    done.fail(exc)  # SIM004 (warning): droppable if nobody waits


def good_fail_defused(done, exc):
    done.fail(exc)
    done.defuse()  # failure is reported out-of-band; waiters optional


def suppressed_fail(done, exc):
    done.fail(exc)  # lint: ok=SIM004 — fixture: suppressed occurrence
