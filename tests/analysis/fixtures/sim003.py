"""SIM003 fixture: real blocking I/O inside simulated processes."""
import time


def bad_sleeper(sim):
    time.sleep(1)  # SIM003: stalls the interpreter, not simulated time
    yield sim.timeout(1.0)


def bad_reader(sim, path):
    data = open(path).read()  # SIM003: real filesystem
    yield sim.timeout(1.0)
    return data


def good_sleeper(sim):
    yield sim.timeout(1.0)


def fine_outside_processes(path):
    # not a coroutine: plain tooling code may touch the real OS
    return open(path).read()


def suppressed_sleeper(sim):
    time.sleep(0)  # lint: ok=SIM003 — fixture: suppressed occurrence
    yield sim.timeout(1.0)
