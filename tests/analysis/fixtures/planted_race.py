"""A planted, runnable race for the static/runtime cross-validation.

``Ledger.settle`` has a textbook ATOM002: a two-step update of
``self.balances`` split by an unguarded yield.  The body is
instrumented with SimTSan spans, so driving two concurrent ``settle``
calls produces a runtime ``write-race`` finding whose sites must land
inside the statically flagged region — the contract under test.
"""


class Ledger:
    def __init__(self, sim):
        self.sim = sim
        self.balances = {}

    def settle(self, key, amount):
        san = self.sim.sanitizer
        span = san.begin("ledger", key, label="settle")
        try:
            self.balances[key] = amount
            san.note_write("ledger", key, "reserve")
            yield self.sim.timeout(1)
            self.balances[key] = amount * 2
            san.note_write("ledger", key, "commit")
        finally:
            san.end(span)
