"""SIM001 fixture: yielding non-waitables from process coroutines."""


def bad_proc(sim):
    yield 5  # SIM001: the engine cannot wait on an int


def bad_proc_str(sim):
    yield "done"  # SIM001


def good_proc(sim):
    yield sim.timeout(1.0)


def good_handler(sim):
    # the non-blocking-handler idiom: return, then a bare yield to make
    # this function a coroutine at all
    return 42
    yield


def suppressed_proc(sim):
    yield 5  # lint: ok=SIM001 — fixture: suppressed occurrence
