"""DET003 fixture: set iteration order in scheduler-adjacent code."""


def bad_literal(sched):
    for host in {"a", "b", "c"}:  # DET003
        sched(host)


def bad_constructor(hosts, sched):
    for host in set(hosts):  # DET003
        sched(host)


def bad_comprehension(hosts):
    return [h for h in set(hosts)]  # DET003


def good_sorted(hosts, sched):
    for host in sorted(set(hosts)):  # sorted() restores a stable order
        sched(host)


def good_list(hosts, sched):
    for host in list(hosts):
        sched(host)


def suppressed(hosts, sched):
    for host in set(hosts):  # lint: ok — fixture: bare suppression
        sched(host)
