"""DET001 fixture: calls through the process-global random module."""
import random


def bad_pick(items):
    return random.choice(items)  # DET001


def bad_seed():
    random.seed(42)  # DET001: still the shared global stream


def good_pick(items, seed):
    rng = random.Random(seed)  # constructor is fine (DET004 vets seeding)
    return rng.choice(items)


def suppressed_pick(items):
    return random.shuffle(items)  # lint: ok=DET001 — fixture: suppressed occurrence
