"""DET002 fixture: wall clock and OS entropy."""
import datetime
import os
import time


def bad_stamp():
    return time.time()  # DET002


def bad_now():
    return datetime.datetime.now()  # DET002


def bad_entropy():
    return os.urandom(8)  # DET002


def good_clock(sim):
    return sim.now  # simulated time is the only clock


def suppressed_stamp():
    return time.monotonic()  # lint: ok=DET002 — fixture: suppressed occurrence
