"""The baseline file, the repro-lint/2 document, and the lint CLI."""

import io
import json
import os

import pytest

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    load_baseline,
)
from repro.analysis.cli import run_lint
from repro.analysis.linter import Finding, finding_fingerprint
from repro.analysis.report import (
    LINT_SCHEMA,
    lint_document,
    validate_lint_document,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
PKG = os.path.join(REPO_ROOT, "src", "repro")
COMMITTED_BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


def make_finding(rule="ATOM001", function="C.m", subject="self.x", line=10):
    return Finding(
        rule=rule,
        path="repro/mod.py",
        line=line,
        col=4,
        message="msg",
        severity="error",
        function=function,
        subject=subject,
        fingerprint=finding_fingerprint(rule, "repro/mod.py", function, subject),
    )


def write_baseline(tmp_path, entries):
    path = tmp_path / "lint-baseline.json"
    path.write_text(
        json.dumps({"schema": BASELINE_SCHEMA, "findings": entries})
    )
    return str(path)


def entry_for(finding, reason="reviewed"):
    return {
        "fingerprint": finding.fingerprint,
        "rule": finding.rule,
        "path": finding.path,
        "function": finding.function,
        "subject": finding.subject,
        "reason": reason,
    }


def test_baseline_round_trip(tmp_path):
    accepted = make_finding()
    fresh = make_finding(function="C.other")
    path = write_baseline(tmp_path, [entry_for(accepted)])
    active, baselined, stale = apply_baseline(
        [accepted, fresh], load_baseline(path)
    )
    assert active == [fresh]
    assert baselined == [accepted]
    assert stale == []


def test_stale_entries_are_reported(tmp_path):
    gone = make_finding(function="C.removed")
    path = write_baseline(tmp_path, [entry_for(gone)])
    active, baselined, stale = apply_baseline([], load_baseline(path))
    assert (active, baselined) == ([], [])
    assert [e["fingerprint"] for e in stale] == [gone.fingerprint]


def test_one_entry_absorbs_all_matching_findings(tmp_path):
    # the fingerprint is line-independent: two anchors, one review
    a = make_finding(line=10)
    b = make_finding(line=22)
    path = write_baseline(tmp_path, [entry_for(a)])
    active, baselined, _ = apply_baseline([a, b], load_baseline(path))
    assert active == []
    assert len(baselined) == 2


def test_baseline_requires_reasons(tmp_path):
    entry = entry_for(make_finding())
    del entry["reason"]
    path = write_baseline(tmp_path, [entry])
    with pytest.raises(ValueError, match="reason"):
        load_baseline(path)


def test_baseline_rejects_wrong_schema(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"schema": "nope/9", "findings": []}))
    with pytest.raises(ValueError, match="schema"):
        load_baseline(str(path))


def test_committed_baseline_loads_and_is_fully_matched():
    doc = load_baseline(COMMITTED_BASELINE)
    assert doc["schema"] == BASELINE_SCHEMA
    assert 0 < len(doc["findings"]) <= 10
    from repro.analysis.atomicity import atomicity_findings
    from repro.analysis.callgraph import index_paths
    from repro.analysis.seam import seam_findings

    index = index_paths([PKG], package_root=PKG)
    findings = atomicity_findings(index) + seam_findings(index)
    active, baselined, stale = apply_baseline(findings, doc)
    assert active == [], [f.format() for f in active]
    assert stale == [], stale
    assert baselined


def test_lint_document_shape_and_validation():
    active = [make_finding()]
    baselined = [make_finding(function="C.accepted")]
    doc = lint_document(
        paths=["src/repro"],
        passes=["det-sim", "atomicity", "seam"],
        strict=True,
        active=active,
        baselined=baselined,
        stale_baseline=[{"fingerprint": "dead", "rule": "ATOM001"}],
        conformance_diffs=[],
        baseline_path="lint-baseline.json",
    )
    assert doc["schema"] == LINT_SCHEMA
    assert validate_lint_document(doc) == []
    assert validate_lint_document(json.loads(json.dumps(doc))) == []
    assert doc["summary"] == {
        "errors": 1,
        "warnings": 0,
        "conformance": 0,
        "baselined": 1,
        "stale_baseline": 1,
    }
    flags = {f["baselined"] for f in doc["findings"]}
    assert flags == {True, False}


def test_validator_catches_problems():
    assert validate_lint_document({}) != []
    doc = lint_document(
        paths=[], passes=[], strict=False, active=[make_finding()]
    )
    doc["findings"][0]["line"] = "ten"
    assert any("line" in p for p in validate_lint_document(doc))


def test_cli_full_run_is_clean_and_writes_valid_json(tmp_path):
    out = io.StringIO()
    report = tmp_path / "report.json"
    code = run_lint(
        strict=True,
        atomicity=True,
        seam=True,
        json_out=str(report),
        out=out,
    )
    assert code == 0, out.getvalue()
    doc = json.loads(report.read_text())
    assert validate_lint_document(doc) == []
    assert set(doc["passes"]) == {"det-sim", "atomicity", "seam", "conformance"}
    assert doc["summary"]["errors"] == 0
    assert doc["summary"]["baselined"] > 0


def test_cli_no_baseline_exposes_accepted_findings():
    out = io.StringIO()
    code = run_lint(
        strict=True, atomicity=True, seam=True, no_baseline=True,
        conformance=False, out=out,
    )
    assert code == 1
    assert "ATOM001" in out.getvalue()
