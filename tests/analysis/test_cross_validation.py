"""The static/runtime cross-validation contract.

Every SimTSan runtime finding must land inside a statically flagged
region: the atomicity pass promises to over-approximate the hazards
the sanitizer can observe.  Two angles:

* a planted, runnable race (fixture ``planted_race.py``) proves the
  containment machinery end to end — the runtime finding's sites fall
  inside the fixture's flagged region;
* the quick nemesis matrix run under a non-strict sanitizer asserts
  the contract over the real tree (the tree is race-clean, so this
  guards against *future* runtime findings escaping static coverage).
"""

import importlib.util
import os

import pytest

from repro.analysis.atomicity import flagged_regions, site_in_regions
from repro.analysis.callgraph import index_paths
from repro.sim import Simulator

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PLANTED = os.path.join(FIXTURES, "planted_race.py")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
PKG = os.path.join(REPO_ROOT, "src", "repro")


def load_planted():
    spec = importlib.util.spec_from_file_location("planted_race", PLANTED)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_planted_race_is_statically_flagged():
    regions = flagged_regions(index_paths([PLANTED]))
    assert any(q == "Ledger.settle" for _, q, _, _ in regions)


def test_planted_runtime_finding_lands_in_flagged_region():
    module = load_planted()
    sim = Simulator()
    san = sim.enable_sanitizer(strict=False)
    ledger = module.Ledger(sim)
    sim.spawn(ledger.settle("k", 1))
    sim.spawn(ledger.settle("k", 2))
    sim.run()

    races = san.findings_of("write-race")
    assert races, "the planted race must fire at runtime"
    regions = flagged_regions(index_paths([PLANTED]))
    for finding in races:
        assert finding.sites, "runtime findings must carry call sites"
        assert any(site_in_regions(site, regions) for site in finding.sites), (
            finding.message,
            finding.sites,
        )


def test_sites_point_into_the_fixture():
    module = load_planted()
    sim = Simulator()
    san = sim.enable_sanitizer(strict=False)
    ledger = module.Ledger(sim)
    sim.spawn(ledger.settle("k", 1))
    sim.spawn(ledger.settle("k", 2))
    sim.run()
    (finding,) = san.findings_of("write-race")[:1]
    files = {os.path.realpath(f) for f, _ in finding.sites}
    assert os.path.realpath(PLANTED) in files


def test_strict_sanitizer_raises_on_the_planted_race():
    from repro.analysis.sanitizer import SanitizerError

    module = load_planted()
    sim = Simulator()
    sim.enable_sanitizer(strict=True)
    ledger = module.Ledger(sim)
    sim.spawn(ledger.settle("k", 1))
    sim.spawn(ledger.settle("k", 2))
    with pytest.raises(SanitizerError):
        sim.run()


@pytest.fixture(scope="module")
def quick_matrix_findings(monkeypatch_module):
    from repro.nemesis import QUICK_PLANS, run_matrix

    sanitizers = []
    orig = Simulator.enable_sanitizer

    def spy(self, strict=True):
        san = orig(self, strict=strict)
        sanitizers.append(san)
        return san

    monkeypatch_module.setenv("REPRO_SANITIZE", "nonstrict")
    monkeypatch_module.setattr(Simulator, "enable_sanitizer", spy)
    cells = run_matrix(seed=1, plans=QUICK_PLANS)
    return cells, sanitizers


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    mp = MonkeyPatch()
    yield mp
    mp.undo()


def test_nemesis_matrix_ran_sanitized(quick_matrix_findings):
    cells, sanitizers = quick_matrix_findings
    assert len(cells) > 0
    assert len(sanitizers) >= len(cells)
    assert all(not s.strict for s in sanitizers)


def test_every_nemesis_runtime_race_is_statically_covered(
    quick_matrix_findings,
):
    _, sanitizers = quick_matrix_findings
    regions = flagged_regions(index_paths([PKG], package_root=PKG))
    assert regions, "the tree has reviewed hazards; regions cannot be empty"
    for san in sanitizers:
        for finding in san.findings_of("write-race"):
            assert finding.sites
            assert any(
                site_in_regions(site, regions) for site in finding.sites
            ), (finding.message, finding.sites)
