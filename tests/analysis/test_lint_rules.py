"""Every lint rule fires on its fixture and honours suppressions."""

import os

import pytest

from repro.analysis.linter import lint_paths, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint_fixture(name):
    return lint_paths([os.path.join(FIXTURES, name)])


# (fixture, rule id, expected number of findings)
CASES = [
    ("det001.py", "DET001", 2),
    ("det002.py", "DET002", 3),
    ("det003.py", "DET003", 3),
    ("det004.py", "DET004", 3),
    ("sim001.py", "SIM001", 2),
    ("sim002.py", "SIM002", 2),
    ("sim003.py", "SIM003", 2),
    ("sim004.py", "SIM004", 1),
]


@pytest.mark.parametrize("fixture,rule,count", CASES)
def test_rule_fires_expected_number_of_times(fixture, rule, count):
    findings = lint_fixture(fixture)
    assert [f.rule for f in findings] == [rule] * count, [
        f.format() for f in findings
    ]


@pytest.mark.parametrize("fixture", sorted({c[0] for c in CASES}))
def test_suppressed_lines_are_not_flagged(fixture):
    path = os.path.join(FIXTURES, fixture)
    with open(path) as fh:
        lines = fh.read().splitlines()
    suppressed_lines = {
        i for i, line in enumerate(lines, start=1) if "# lint: ok" in line
    }
    assert suppressed_lines, "fixture %s must exercise suppression" % fixture
    flagged = {f.line for f in lint_fixture(fixture)}
    assert not (flagged & suppressed_lines)


def test_sim004_is_a_warning():
    findings = lint_fixture("sim004.py")
    assert all(f.severity == "warning" for f in findings)


def test_bare_ok_suppresses_everything():
    findings = lint_source(
        "import random\n"
        "x = random.random()  # lint: ok — reviewed\n"
    )
    assert findings == []


def test_reasonless_suppression_gets_sup001():
    findings = lint_source(
        "import random\n"
        "x = random.random()  # lint: ok\n"
    )
    assert [f.rule for f in findings] == ["SUP001"]
    assert findings[0].severity == "warning"


def test_bare_ok_does_not_self_suppress_sup001():
    # only an explicit ok=SUP001 can silence the reason requirement
    reasonless = lint_source("x = 1  # lint: ok\n")
    assert [f.rule for f in reasonless] == ["SUP001"]
    explicit = lint_source("x = 1  # lint: ok=SUP001\n")
    assert explicit == []


def test_ascii_dashes_accepted_as_reason_marker():
    findings = lint_source(
        "import random\n"
        "x = random.random()  # lint: ok -- reviewed\n"
    )
    assert findings == []


def test_named_ok_only_covers_listed_rules():
    findings = lint_source(
        "import random, time\n"
        "def f():\n"
        "    return random.random() + time.time()"
        "  # lint: ok=DET001 — reviewed\n"
    )
    assert [f.rule for f in findings] == ["DET002"]


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = lint_paths([str(bad)])
    assert [f.rule for f in findings] == ["PARSE"]


def test_non_scheduler_code_skips_order_rules():
    # a file whose package placement is known to be outside the
    # scheduler-adjacent subpackages gets no DET003/SIM001
    findings = lint_source(
        "def f(xs):\n"
        "    return [x for x in set(xs)]\n",
        path="src/repro/experiments/demo.py",
        package_root="src/repro",
    )
    assert findings == []


def test_repro_tree_is_clean():
    """The acceptance bar: the shipped tree has zero lint findings."""
    import repro

    pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
    findings = lint_paths([pkg_dir], package_root=pkg_dir)
    assert findings == [], [f.format() for f in findings]
