"""The ATOM001-ATOM004 atomicity rules on their fixture."""

import os

import pytest

from repro.analysis.atomicity import (
    analyze_index,
    atomicity_findings,
    flagged_regions,
    site_in_regions,
)
from repro.analysis.callgraph import index_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
ATOM = os.path.join(FIXTURES, "atom_rules.py")


@pytest.fixture(scope="module")
def index():
    return index_paths([ATOM])


@pytest.fixture(scope="module")
def raw(index):
    return analyze_index(index)


def by_function(findings):
    return {f.function: f for f in findings}


def test_each_rule_fires_on_its_method(raw):
    got = {(f.function, f.rule) for f in raw}
    assert ("Table.lost_update", "ATOM001") in got
    assert ("Table.torn_update", "ATOM002") in got
    assert ("Table.stale_reread", "ATOM003") in got
    assert ("Table.sweep", "ATOM004") in got
    assert ("Aliased.bump", "ATOM001") in got


def test_no_findings_on_guarded_or_local_methods(raw):
    functions = {f.function for f in raw}
    assert "Table.locked_update" not in functions
    assert "Table.flushed_update" not in functions
    assert "Table.local_only" not in functions


def test_severities(raw):
    sev = {f.rule: f.severity for f in raw}
    assert sev["ATOM001"] == "error"
    assert sev["ATOM002"] == "error"
    assert sev["ATOM003"] == "warning"
    assert sev["ATOM004"] == "warning"


def test_one_finding_per_location(raw):
    keys = [(f.function, f.subject) for f in raw]
    assert len(keys) == len(set(keys))


def test_subject_is_root_plus_attribute(raw):
    subjects = {f.function: f.subject for f in raw}
    assert subjects["Table.lost_update"] == "self.entries"
    assert subjects["Aliased.bump"] == "entry.count"


def test_message_cites_both_sides_of_the_crossing(raw):
    finding = by_function(raw)["Table.lost_update"]
    assert "read (line" in finding.message
    assert "unguarded yield (line" in finding.message


def test_suppression_filters_reviewed_findings(index, raw):
    assert any(f.function == "Table.reviewed_update" for f in raw)
    filtered = atomicity_findings(index)
    assert not any(f.function == "Table.reviewed_update" for f in filtered)


def test_suppressed_findings_still_flag_their_region(index):
    regions = flagged_regions(index)
    assert any(q == "Table.reviewed_update" for _, q, _, _ in regions)


def test_fingerprints_are_line_independent(index, raw):
    # re-parse with a leading comment: every line shifts, every
    # fingerprint survives
    with open(ATOM) as fh:
        source = fh.read()
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        shifted = os.path.join(tmp, "atom_rules.py")
        with open(shifted, "w") as fh:
            fh.write("# shifted\n" * 7 + source)
        shifted_raw = analyze_index(index_paths([shifted]))
    assert {(f.rule, f.function, f.subject, f.fingerprint) for f in raw} == {
        (f.rule, f.function, f.subject, f.fingerprint) for f in shifted_raw
    }


def test_site_in_regions_containment(index):
    regions = flagged_regions(index)
    region = next(r for r in regions if r[1] == "Table.lost_update")
    path, _, first, last = region
    assert site_in_regions((path, first), regions)
    assert site_in_regions((path, last), regions)
    assert not site_in_regions((path, 100000), regions)
    assert not site_in_regions(("/nonexistent.py", first), regions)
