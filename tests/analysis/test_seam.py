"""The SEAM001-SEAM003 seam-contract rules on their fixture."""

import os

import pytest

from repro.analysis.callgraph import index_paths
from repro.analysis.seam import analyze_index

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
SEAM = os.path.join(FIXTURES, "seam_rules.py")


@pytest.fixture(scope="module")
def raw():
    return analyze_index(index_paths([SEAM]))


def of_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def test_totals(raw):
    assert len(of_rule(raw, "SEAM001")) == 4
    assert len(of_rule(raw, "SEAM002")) == 3
    assert len(of_rule(raw, "SEAM003")) == 3
    assert all(f.severity == "error" for f in raw)


def test_conforming_classes_are_clean(raw):
    flagged = {f.function.split(".")[0] for f in raw} | {
        f.subject for f in raw if "." not in f.function
    }
    assert "GoodPolicy" not in flagged
    assert "GoodServer" not in flagged


def test_seam001_arity_violation(raw):
    finding = next(
        f for f in of_rule(raw, "SEAM001")
        if f.function == "BadArityPolicy.on_open"
    )
    assert "positional arg" in finding.message


def test_seam001_coroutine_hook_must_be_generator(raw):
    finding = next(
        f for f in of_rule(raw, "SEAM001")
        if f.function == "NotAGeneratorPolicy.on_close"
    )
    assert "generator" in finding.message


def test_seam001_server_proc_contract(raw):
    findings = [
        f for f in of_rule(raw, "SEAM001")
        if f.function == "BadProcServer.proc_open"
    ]
    messages = " ".join(f.message for f in findings)
    assert "src" in messages
    assert "generator" in messages
    assert len(findings) == 2


def test_seam002_both_directions(raw):
    functions = {f.function for f in of_rule(raw, "SEAM002")}
    assert "UndeclaredReclaimPolicy.reclaim" in functions
    assert "DeclaredNoReclaimPolicy" in functions


def test_seam002_rpc_bypass(raw):
    finding = next(
        f for f in of_rule(raw, "SEAM002") if f.subject == "rpc.call"
    )
    assert finding.function == "BypassPolicy.on_open"
    assert "retry loop" in finding.message


def test_seam003_host_hooks_are_off_limits(raw):
    finding = next(
        f for f in of_rule(raw, "SEAM003")
        if f.function == "HostHookServer.on_host_crash"
    )
    assert "host lifecycle" in finding.message


def test_seam003_crash_state_reset_off_the_crash_path(raw):
    functions = {
        f.function for f in of_rule(raw, "SEAM003") if f.subject == "_tables"
    }
    assert functions == {
        "TableResetServer.proc_reset",
        "TableResetServer.maintenance",
    }


def test_real_tree_seam_is_clean():
    pkg = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "src",
        "repro",
    )
    findings = analyze_index(index_paths([pkg], package_root=pkg))
    assert findings == [], [f.format() for f in findings]
