"""SimTSan: the runtime race/leak sanitizer."""

import pytest

from repro.analysis.sanitizer import Sanitizer, SanitizerError
from repro.sim import SimulationError, Simulator


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Simulator().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Simulator().sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert Simulator().sanitizer is None


def test_write_race_between_unserialized_processes():
    sim = Simulator()
    san = sim.enable_sanitizer()

    def opener(sim, san):
        span = san.begin("tbl", "f", "open")
        san.note_write("tbl", "f", what="state")
        yield sim.timeout(1.0)  # e.g. waiting on a callback RPC
        san.end(span)

    def intruder(sim, san):
        yield sim.timeout(0.5)
        san.note_write("tbl", "f", what="state")

    sim.spawn(opener(sim, san))
    sim.spawn(intruder(sim, san))
    with pytest.raises(SanitizerError, match="write-race"):
        sim.run()


def test_no_race_when_first_span_has_not_written():
    # the lock-blocked pattern: a span that is merely *waiting* (no
    # writes yet) does not race with another process's write
    sim = Simulator()
    san = sim.enable_sanitizer()

    def blocked(sim, san):
        span = san.begin("tbl", "f", "open")
        yield sim.timeout(1.0)  # parked on a lock, wrote nothing
        san.end(span)

    def writer(sim, san):
        yield sim.timeout(0.5)
        san.note_write("tbl", "f", what="state")

    sim.spawn(blocked(sim, san))
    sim.spawn(writer(sim, san))
    sim.run()
    assert san.findings == []


def test_same_process_reentry_is_not_a_race():
    sim = Simulator()
    san = sim.enable_sanitizer()

    def proc(sim, san):
        span = san.begin("tbl", "f", "op")
        san.note_write("tbl", "f")
        yield sim.timeout(1.0)
        san.note_write("tbl", "f")  # own span: fine
        san.end(span)

    sim.spawn(proc(sim, san))
    sim.run()
    assert san.findings == []


def test_race_on_different_keys_is_independent():
    sim = Simulator()
    san = sim.enable_sanitizer()

    def opener(sim, san):
        span = san.begin("tbl", "f1", "open")
        san.note_write("tbl", "f1")
        yield sim.timeout(1.0)
        san.end(span)

    def other(sim, san):
        yield sim.timeout(0.5)
        san.note_write("tbl", "f2")  # different file: no race

    sim.spawn(opener(sim, san))
    sim.spawn(other(sim, san))
    sim.run()
    assert san.findings == []


def test_event_leak_reported_at_drain():
    sim = Simulator()
    sim.enable_sanitizer()

    def waiter(sim):
        yield sim.event(name="never-triggered")

    sim.spawn(waiter(sim))
    with pytest.raises(SanitizerError, match="event-leak"):
        sim.run()


def test_leak_ok_events_are_exempt():
    # an idle service loop (RPC dispatcher, worker pool) parks on its
    # queue forever; Store(daemon=True) marks those waits leak_ok
    sim = Simulator()
    sim.enable_sanitizer()

    def service(sim):
        ev = sim.event(name="service-idle")
        ev.leak_ok = True
        yield ev

    sim.spawn(service(sim))
    sim.run()  # must not raise


def test_double_resolve_recorded_alongside_engine_error():
    sim = Simulator()
    san = sim.enable_sanitizer()
    ev = sim.event(name="once")
    ev.succeed(1)
    sim.run()
    with pytest.raises(SimulationError):
        ev.succeed(2)
    finds = san.findings_of("double-resolve")
    assert len(finds) == 1
    assert "once" in finds[0].message


def test_dropped_failure_noted_when_surfaced():
    sim = Simulator()
    san = sim.enable_sanitizer()

    def proc(sim):
        ev = sim.event(name="orphan")
        ev.fail(RuntimeError("boom"))
        return 0
        yield

    sim.spawn(proc(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    assert len(san.findings_of("dropped-failure")) == 1


def test_rpc_double_reply_reports():
    sim = Simulator()
    san = sim.enable_sanitizer()
    with pytest.raises(SanitizerError, match="rpc-double-reply"):
        san.on_rpc_double_reply("server", ("client", 7), object(), object())


def test_non_strict_mode_collects_without_raising():
    sim = Simulator()
    san = sim.enable_sanitizer(strict=False)

    def opener(sim, san):
        span = san.begin("tbl", "f", "open")
        san.note_write("tbl", "f")
        yield sim.timeout(1.0)
        san.end(span)

    def intruder(sim, san):
        yield sim.timeout(0.5)
        san.note_write("tbl", "f")

    sim.spawn(opener(sim, san))
    sim.spawn(intruder(sim, san))
    sim.run()
    assert len(san.findings_of("write-race")) == 1


def test_fd_sharing_between_processes_is_caught():
    """End to end: two workload processes driving one descriptor.

    A read syscall is a write of the descriptor (its offset moves) and
    yields mid-span when the block must be fetched from the server; a
    second process reading the same fd in that window interleaves."""
    from repro.experiments.cluster import build_testbed
    from repro.fs.types import OpenMode
    from repro.host.config import HostConfig

    tb = build_testbed(
        protocol="snfs", seed=3, host_config=HostConfig(cache_blocks=2)
    )
    sim = tb.sim
    kernel = tb.client.kernel

    def setup():
        fd = yield from kernel.open("/data/shared", OpenMode.WRITE, create=True)
        yield from kernel.write(fd, b"x" * 65536)
        yield from kernel.close(fd)

    tb.run(setup())  # 16 blocks on the server; the 2-block cache is cold

    sim.enable_sanitizer()
    fd_holder = []

    def owner():
        fd = yield from kernel.open("/data/shared", OpenMode.READ)
        fd_holder.append(fd)
        data = yield from kernel.read(fd, 4096)  # fill RPC: yields mid-span
        assert data
        yield from kernel.close(fd)

    def intruder():
        while not fd_holder:
            yield sim.timeout(0.0005)
        yield from kernel.read(fd_holder[0], 4096)

    sim.spawn(owner())
    sim.spawn(intruder())
    with pytest.raises(SanitizerError, match="write-race"):
        sim.run(until=60.0)
