"""Smoke tests: every example script runs cleanly end to end.

Examples are the first thing a new user runs; these tests keep them
working as the library evolves.  Each runs in-process (the scripts
expose ``main()``).
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart",
    "consistency_demo",
    "crash_recovery",
    "block_tokens",
    "trace_replay",
    # andrew_benchmark and sort_benchmark run the full table sweeps
    # (~30 s together); they are exercised by the benchmark harness
    # instead, which regenerates the same tables with assertions.
]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # it actually told the user something


def test_quickstart_shows_the_headline_behaviours(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "the close did not flush" in out
    assert "cancelled" in out
    assert "CLOSED_DIRTY" in out


def test_consistency_demo_shows_stale_nfs_reads(capsys):
    _load("consistency_demo").main()
    out = capsys.readouterr().out
    assert "STALE" in out
    assert "0 stale" in out  # the SNFS line


def test_crash_recovery_reports_intact_journal(capsys):
    _load("crash_recovery").main()
    out = capsys.readouterr().out
    assert "SERVER CRASHED" in out
    assert "intact after recovery: True" in out
