"""Randomized stress for the lock daemon: safety invariants.

Many clients run random lock/unlock loops on a few keys; at every
grant we assert the core safety property — an exclusive hold excludes
everyone — and at the end, that no lock state leaks.
"""

import random

import pytest

from repro.host import Host, HostConfig
from repro.lockd import LockClient, LockServer
from repro.net import Network
from repro.sim import AllOf, Simulator


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randomized_locking_safety(seed):
    sim = Simulator()
    network = Network(sim)
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    lockd = LockServer(server_host)
    n_clients = 4
    keys = ["k1", "k2"]
    lockers = []
    for i in range(n_clients):
        host = Host(sim, network, "client%d" % i, HostConfig.titan_client())
        lockers.append(LockClient(host, "server"))

    rng = random.Random(seed)
    # ground truth of current holds: key -> {client: "x"|"s"}
    holds = {k: {} for k in keys}
    violations = []

    def check(key):
        modes = holds[key]
        exclusives = [c for c, m in modes.items() if m == "x"]
        if len(exclusives) > 1:
            violations.append(("two exclusives", key, dict(modes)))
        if exclusives and len(modes) > 1:
            violations.append(("exclusive with company", key, dict(modes)))

    def actor(idx):
        me = "client%d" % idx
        locker = lockers[idx]
        for _ in range(12):
            key = rng.choice(keys)
            exclusive = rng.random() < 0.5
            yield from locker.acquire(key, exclusive=exclusive)
            holds[key][me] = "x" if exclusive else "s"
            check(key)
            yield sim.timeout(rng.uniform(0.01, 0.3))
            del holds[key][me]
            yield from locker.release(key)
            yield sim.timeout(rng.uniform(0.0, 0.2))

    procs = [sim.spawn(actor(i)) for i in range(n_clients)]
    gate = AllOf(sim, procs)
    gate.defuse()
    sim.run_until(gate, limit=1e6)
    for proc in procs:
        if proc.exception is not None:
            proc.defuse()
            raise proc.exception

    assert violations == [], violations[:3]
    assert lockd.lock_count() == 0  # everything released, nothing leaked
