"""Tests for the lock daemon, and the §2.2 serialized write-sharing demo."""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.lockd import LockClient, LockServer, LockTimeout
from repro.net import Network
from repro.snfs import SnfsClient, SnfsServer


class LockWorld:
    def __init__(self, runner, n_clients=2, with_snfs=False):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.lockd = LockServer(self.server_host)
        if with_snfs:
            self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
            self.snfs_server = SnfsServer(self.server_host, self.export)
        self.clients = []
        self.lockers = []
        for i in range(n_clients):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            if with_snfs:
                mount = SnfsClient("m%d" % i, host, "server")
                runner.run(mount.attach())
                host.kernel.mount("/data", mount)
            self.clients.append(host)
            self.lockers.append(LockClient(host, "server"))


@pytest.fixture
def world(runner):
    return LockWorld(runner)


def test_exclusive_lock_excludes(runner, world):
    l0, l1 = world.lockers
    log = []

    def holder():
        yield from l0.acquire("k")
        log.append(("l0-acquired", runner.sim.now))
        yield runner.sim.timeout(5.0)
        yield from l0.release("k")

    def contender():
        yield runner.sim.timeout(1.0)
        yield from l1.acquire("k")
        log.append(("l1-acquired", runner.sim.now))
        yield from l1.release("k")

    runner.run_all(holder(), contender())
    times = dict(log)
    assert times["l1-acquired"] >= times["l0-acquired"] + 5.0


def test_shared_locks_coexist(runner, world):
    l0, l1 = world.lockers
    log = []

    def reader(locker, tag):
        yield from locker.acquire("k", exclusive=False)
        log.append((tag, runner.sim.now))
        yield runner.sim.timeout(3.0)
        yield from locker.release("k")

    runner.run_all(reader(l0, "a"), reader(l1, "b"))
    times = dict(log)
    assert abs(times["a"] - times["b"]) < 1.0  # held concurrently


def test_nonblocking_acquire_denied(runner, world):
    l0, l1 = world.lockers

    def scenario():
        yield from l0.acquire("k")
        with pytest.raises(LockTimeout):
            yield from l1.acquire("k", wait=False)
        yield from l0.release("k")
        yield from l1.acquire("k", wait=False)  # now free
        yield from l1.release("k")

    runner.run(scenario())


def test_fifo_no_writer_starvation(runner):
    world = LockWorld(runner, n_clients=3)
    l0, l1, l2 = world.lockers
    order = []

    def sharer_stream(locker, tag, start):
        yield runner.sim.timeout(start)
        yield from locker.acquire("k", exclusive=False)
        order.append(tag)
        yield runner.sim.timeout(4.0)
        yield from locker.release("k")

    def writer():
        yield runner.sim.timeout(1.0)
        yield from l2.acquire("k", exclusive=True)
        order.append("writer")
        yield from l2.release("k")

    # sharer a holds [0,4); writer queues at 1; sharer b arrives at 2 and
    # must NOT overtake the queued writer
    runner.run_all(
        sharer_stream(l0, "a", 0.0),
        writer(),
        sharer_stream(l1, "b", 2.0),
    )
    assert order.index("writer") < order.index("b")


def test_clear_dead_client_releases_locks(runner, world):
    l0, l1 = world.lockers

    def scenario():
        yield from l0.acquire("k")
        world.clients[0].crash()
        # admin clears the dead client; l1 can now take the lock
        yield from l1.clear_client("client0")
        yield from l1.acquire("k", wait=False)
        yield from l1.release("k")

    runner.run(scenario())
    assert world.lockd.lock_count() == 0


def test_reacquire_own_lock_idempotent(runner, world):
    l0 = world.lockers[0]

    def scenario():
        yield from l0.acquire("k")
        yield from l0.acquire("k")  # no deadlock against oneself
        yield from l0.release("k")

    runner.run(scenario())


def test_serialized_write_sharing_is_fully_consistent(runner):
    """§2.2's caveat made real: two SNFS clients read-modify-write one
    counter file under the lock.  The file is write-shared (caching
    disabled, synchronous server I/O), the lock serializes the
    read-modify-write — so no update is ever lost."""
    world = LockWorld(runner, n_clients=2, with_snfs=True)
    rounds = 15

    def incrementer(idx):
        k = world.clients[idx].kernel
        locker = world.lockers[idx]
        for _ in range(rounds):
            yield from locker.acquire("counter")
            try:
                fd = yield from k.open("/data/counter", OpenMode.WRITE, create=True)
                data = yield from k.read(fd, 64)  # opened RW: read works
                value = int(bytes(data) or b"0")
                k.lseek(fd, 0)
                yield from k.write(fd, str(value + 1).encode())
                yield from k.fsync(fd)
                yield from k.close(fd)
            finally:
                yield from locker.release("counter")
            yield runner.sim.timeout(0.05)

    runner.run_all(incrementer(0), incrementer(1))

    def check():
        k = world.clients[0].kernel
        fd = yield from k.open("/data/counter", OpenMode.READ)
        data = yield from k.read(fd, 64)
        yield from k.close(fd)
        return int(bytes(data))

    assert runner.run(check()) == 2 * rounds
