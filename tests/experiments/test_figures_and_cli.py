"""Tests for the figure helpers and the command-line interface."""

import pytest

from repro.experiments.figures import FigureData, _correlation, _resample
from repro.experiments.andrew import rates_from_times


# -- pure helpers -------------------------------------------------------------


def test_correlation_perfect_and_inverse():
    assert _correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert _correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)


def test_correlation_degenerate_cases():
    assert _correlation([], []) == 0.0
    assert _correlation([1], [1]) == 0.0
    assert _correlation([1, 1, 1], [2, 3, 4]) == 0.0  # zero variance


def test_resample_aligns_window_ends_to_bucket_starts():
    # rate buckets: [0,5) -> 1.0, [5,10) -> 3.0
    series = [(0.0, 1.0), (5.0, 3.0)]
    # utilization stamped at window *ends* 5 and 10
    assert _resample(series, [5.0, 10.0]) == [1.0, 3.0]


def test_rates_from_times_bucketing():
    rates = rates_from_times([0.1, 0.2, 7.0], bucket=5.0, t_end=10.0)
    assert rates == [(0.0, 2 / 5.0), (5.0, 1 / 5.0)]


def test_rates_from_times_empty():
    assert rates_from_times([], bucket=5.0, t_end=10.0) == [(0.0, 0.0), (5.0, 0.0)]


def test_figure_data_mean_utilization():
    fd = FigureData(
        protocol="nfs",
        utilization=[(5.0, 0.2), (10.0, 0.4)],
        total_rate=[],
        read_rate=[],
        write_rate=[],
    )
    assert fd.mean_utilization() == pytest.approx(0.3)


# -- CLI ---------------------------------------------------------------------


def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table" in out


def test_cli_table_4_1(capsys):
    from repro.__main__ import main

    assert main(["table", "4-1"]) == 0
    out = capsys.readouterr().out
    assert "ONE_READER" in out
    assert "WRITE_SHARED" in out


def test_cli_unknown_table():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["table", "9-9"])


def test_cli_consistency(capsys):
    from repro.__main__ import main

    assert main(["consistency"]) == 0
    out = capsys.readouterr().out
    assert "SNFS" in out and "Stale" in out


def test_cli_micro(capsys):
    from repro.__main__ import main

    assert main(["micro"]) == 0
    out = capsys.readouterr().out
    assert "reread" in out
