"""Fast sanity tests for the experiment runners (small workloads)."""

import pytest

from repro.experiments import (
    run_andrew,
    run_consistency,
    run_scaling_point,
    run_sort,
)
from repro.workloads import make_tree


SMALL_TREE = make_tree(n_dirs=1, files_per_dir=4)


def test_run_andrew_small():
    run = run_andrew("snfs", remote_tmp=True, tree=SMALL_TREE)
    assert run.result.total > 0
    assert run.rpc_rows["open"] > 0
    assert run.rpc_rows["lookup"] > 0


def test_run_andrew_local_has_no_rpc_rows():
    run = run_andrew("local", tree=SMALL_TREE)
    assert run.rpc_rows == {}
    assert run.result.total > 0


def test_run_andrew_figure_mode_collects_series():
    run = run_andrew(
        "nfs", remote_tmp=True, tree=SMALL_TREE, keep_call_times=True,
        sample_interval=2.0,
    )
    assert run.server_utilization is not None
    assert len(run.server_utilization) > 0
    assert run.call_times["total"]


def test_run_sort_small():
    run = run_sort("snfs", input_bytes=64 * 1024)
    assert run.output_ok
    assert run.result.elapsed > 0


def test_run_sort_deterministic():
    a = run_sort("nfs", input_bytes=64 * 1024)
    b = run_sort("nfs", input_bytes=64 * 1024)
    assert a.result.elapsed == b.result.elapsed
    assert a.rpc_rows == b.rpc_rows


def test_run_consistency_quick():
    out = run_consistency("snfs", n_updates=4, write_period=2.0, read_period=1.0)
    assert out.stale == 0
    assert out.total > 0


def test_run_scaling_point_quick():
    pt = run_scaling_point("snfs", n_clients=2, iterations=2, file_blocks=1)
    assert pt.n_clients == 2
    assert pt.mean_client_seconds > 0
    assert 0 <= pt.server_cpu_utilization <= 1
    assert 0 <= pt.server_disk_utilization <= 1
