"""Tests for the sharded testbed, referral routing, and failover."""

import pytest

from repro.fs import CrossShardError, FileType, OpenMode
from repro.experiments import build_sharded_cluster
from repro.snfs import SnfsClientConfig


def _write(bed, kernel, path, data):
    def scenario():
        fd = yield from kernel.open(path, OpenMode.WRITE, create=True, truncate=True)
        yield from kernel.write(fd, data)
        yield from kernel.close(fd)

    bed.run(scenario())


def _read(bed, kernel, path):
    def scenario():
        fd = yield from kernel.open(path, OpenMode.READ)
        got = yield from kernel.read(fd, 1 << 20)
        yield from kernel.close(fd)
        return got

    return bed.run(scenario())


def _wait(bed, dt):
    def scenario():
        yield bed.sim.timeout(dt)

    bed.run(scenario())


@pytest.mark.parametrize("protocol", ("nfs", "snfs", "rfs", "kent", "lease"))
def test_every_protocol_builds_a_sharded_namespace(protocol):
    bed = build_sharded_cluster(protocol, n_shards=2, n_clients=1, seed=7)
    k = bed.kernels[0]
    bed.run(k.mkdir("/data/alpha"))
    _write(bed, k, "/data/alpha/f", b"hello")
    assert _read(bed, k, "/data/alpha/f") == b"hello"


def test_root_readdir_merges_all_shards():
    bed = build_sharded_cluster(
        "snfs", n_shards=2, n_clients=1, strategy="subtree",
        assignments={"a": 0, "b": 1}, seed=7,
    )
    k = bed.kernels[0]
    bed.run(k.mkdir("/data/a"))
    bed.run(k.mkdir("/data/b"))
    names = bed.run(k.readdir("/data"))
    assert "a" in names and "b" in names
    # the two directories really live on different servers
    ns = bed.namespaces[0]
    assert ns.table.resolve("a") is not ns.table.resolve("b")


def test_lookup_spans_parent_and_child_shards():
    # the parent directory resolves through the referral root on one
    # shard; the child is a plain per-shard lookup below it
    bed = build_sharded_cluster(
        "snfs", n_shards=2, n_clients=2, strategy="subtree",
        assignments={"a": 0, "b": 1}, seed=7,
    )
    k0, k1 = bed.kernels
    bed.run(k0.mkdir("/data/a"))
    bed.run(k0.mkdir("/data/b"))
    _write(bed, k0, "/data/a/one", b"1")
    _write(bed, k0, "/data/b/two", b"22")
    # a *different* client walks both shards through one tree
    assert _read(bed, k1, "/data/a/one") == b"1"
    assert _read(bed, k1, "/data/b/two") == b"22"
    attr = bed.run(k1.stat("/data/b/two"))
    assert attr.ftype == FileType.REGULAR
    assert attr.size == 2


def test_cross_shard_rename_is_exdev():
    bed = build_sharded_cluster(
        "snfs", n_shards=2, n_clients=1, strategy="subtree",
        assignments={"a": 0, "b": 1}, seed=7,
    )
    k = bed.kernels[0]
    bed.run(k.mkdir("/data/a"))
    bed.run(k.mkdir("/data/b"))
    _write(bed, k, "/data/a/f", b"x")
    with pytest.raises(CrossShardError):
        bed.run(k.rename("/data/a/f", "/data/b/f"))
    # the top-level entries themselves are shard boundaries too: "a"
    # is pinned to shard 0, "b" to shard 1 (an unassigned destination
    # would fall to the default shard and stay legal)
    with pytest.raises(CrossShardError):
        bed.run(k.rename("/data/a", "/data/b"))
    # same-shard rename still works, deep and at the root
    bed.run(k.rename("/data/a/f", "/data/a/g"))
    assert _read(bed, k, "/data/a/g") == b"x"


def test_cross_shard_link_is_exdev():
    bed = build_sharded_cluster(
        "snfs", n_shards=2, n_clients=1, strategy="subtree",
        assignments={"a": 0, "b": 1}, seed=7,
    )
    k = bed.kernels[0]
    bed.run(k.mkdir("/data/a"))
    bed.run(k.mkdir("/data/b"))
    _write(bed, k, "/data/a/f", b"x")
    with pytest.raises(CrossShardError):
        bed.run(k.link("/data/a/f", "/data/b/f-link"))
    bed.run(k.link("/data/a/f", "/data/a/f-link"))
    assert _read(bed, k, "/data/a/f-link") == b"x"


def test_shard_map_change_purges_shared_dnlc():
    bed = build_sharded_cluster(
        "snfs", n_shards=2, n_clients=1, strategy="subtree",
        assignments={"a": 0}, seed=7,
        client_config=SnfsClientConfig(name_cache_ttl=30.0),
    )
    k = bed.kernels[0]
    ns = bed.namespaces[0]
    bed.run(k.mkdir("/data/a"))
    _write(bed, k, "/data/a/f", b"x")
    # plant a sentinel translation that no later lookup will repopulate
    ns.dnlc.put("sentinel-dir", "name", "fid", FileType.REGULAR)
    assert ns.dnlc.get("sentinel-dir", "name") is not None
    # moving a (fresh) name bumps the map version; the next routed
    # lookup must purge every cached translation
    ns.table.shard_map.assign("moved", 1)
    assert _read(bed, k, "/data/a/f") == b"x"
    assert ns.dnlc.get("sentinel-dir", "name") is None


def test_shard_mounts_share_one_dnlc():
    bed = build_sharded_cluster("snfs", n_shards=3, n_clients=1, seed=7)
    ns = bed.namespaces[0]
    caches = {id(m.dnlc) for m in ns.table.mounts()}
    assert len(caches) == 1
    assert ns.dnlc is ns.table.mounts()[0].dnlc


def test_single_shard_crash_failover():
    bed = build_sharded_cluster(
        "snfs", n_shards=2, n_clients=2, strategy="subtree",
        assignments={"a": 0, "b": 1}, seed=7, with_oracle=True,
    )
    k0, k1 = bed.kernels
    bed.run(k0.mkdir("/data/a"))
    bed.run(k0.mkdir("/data/b"))
    _write(bed, k0, "/data/a/crashed-shard", b"survives")
    _write(bed, k1, "/data/b/healthy-shard", b"steady")
    # flush the delayed writes: the crash must test failover routing,
    # not the (documented) durability window of unflushed dirty blocks
    bed.run(k0.sync())
    bed.run(k1.sync())
    assert bed.boot_epochs() == [0, 0]

    bed.crash_shard(0)
    _wait(bed, 1.0)
    bed.reboot_shard(0)
    _wait(bed, 1.0)

    # the crashed shard's clients reclaim and carry on ...
    assert _read(bed, k1, "/data/a/crashed-shard") == b"survives"
    # ... while the healthy shard never power-cycled or stalled
    assert _read(bed, k0, "/data/b/healthy-shard") == b"steady"
    assert bed.boot_epochs() == [1, 0]
    bed.final_checks()
    assert bed.oracle.summary() == {}


def test_sharded_scaling_shrinks_sim_time():
    # identical work (same clients, same iterations) across more shard
    # servers must finish in less simulated time — the server CPU is
    # the bottleneck the shards split
    from repro.bench.workloads import sharded_point

    _, sim_1 = sharded_point("snfs", 1, 12, iterations=2, seed=5)
    _, sim_4 = sharded_point("snfs", 4, 12, iterations=2, seed=5)
    assert sim_1 > 1.8 * sim_4


def test_mount_table_validates_width():
    from repro.proto import ShardMap
    from repro.vfs import MountTable

    with pytest.raises(ValueError):
        MountTable(ShardMap(3), mounts=[object(), object()])
