"""Tests for the testbed builder and measurement plumbing."""

import pytest

from repro.fs import OpenMode
from repro.experiments import build_testbed
from repro.experiments.cluster import PROTOCOLS


def write_read(bed, path, data):
    k = bed.client.kernel

    def scenario():
        fd = yield from k.open(path, OpenMode.WRITE, create=True)
        yield from k.write(fd, data)
        yield from k.close(fd)
        fd = yield from k.open(path, OpenMode.READ)
        got = yield from k.read(fd, 1 << 20)
        yield from k.close(fd)
        return got

    return bed.run(scenario())


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_every_protocol_builds_and_works(protocol):
    bed = build_testbed(protocol)
    assert write_read(bed, "/data/f", b"hello") == b"hello"
    assert write_read(bed, "/tmp/t", b"temp") == b"temp"
    assert write_read(bed, "/input/i", b"input") == b"input"


def test_remote_tmp_routes_to_server():
    bed = build_testbed("snfs", remote_tmp=True)
    before = bed.client.rpc.client_stats.total()
    write_read(bed, "/tmp/t", b"x")
    assert bed.client.rpc.client_stats.total() > before


def test_local_tmp_stays_off_the_network():
    bed = build_testbed("snfs", remote_tmp=False)
    before = bed.client.rpc.client_stats.total()
    write_read(bed, "/tmp/t", b"x")
    assert bed.client.rpc.client_stats.total() == before


def test_local_protocol_has_no_server():
    bed = build_testbed("local")
    assert bed.server_host is None
    assert bed.server is None
    assert bed.server_disk_stats() == {}


def test_client_rpc_rows_exclude_mount_traffic():
    bed = build_testbed("nfs")
    rows = bed.client_rpc_rows()
    # attach() issued nfs.mnt, but it must not count as workload
    assert rows["total"] == 0 or "mnt" not in str(rows)


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        build_testbed("afs")


def test_run_propagates_workload_errors():
    bed = build_testbed("local")

    def bad():
        yield bed.sim.timeout(0.1)
        raise RuntimeError("workload broke")

    with pytest.raises(RuntimeError, match="workload broke"):
        bed.run(bad())


def test_run_all_concurrent_workloads():
    bed = build_testbed("snfs")
    k = bed.client.kernel

    def one(i):
        fd = yield from k.open("/data/f%d" % i, OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x")
        yield from k.close(fd)
        return i

    results = bed.run_all(one(0), one(1), one(2))
    assert results == [0, 1, 2]


def test_update_daemons_can_be_disabled():
    bed = build_testbed("snfs", update_daemons=False)
    assert not bed.client.update_daemon.running
    bed2 = build_testbed("snfs", update_daemons=True)
    assert bed2.client.update_daemon.running
