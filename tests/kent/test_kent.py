"""Tests for the block-granularity consistency scheme (§2.5)."""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.kent import KPROC, KentClient, KentServer
from repro.net import Network


class KentWorld:
    def __init__(self, runner, n_clients=2):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = KentServer(self.server_host, self.export)
        self.clients = []
        self.mounts = []
        for i in range(n_clients):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            client = KentClient("k%d" % i, host, "server")
            runner.run(client.attach())
            host.kernel.mount("/data", client)
            self.clients.append(host)
            self.mounts.append(client)

    def rpc(self, proc, i=0):
        return self.clients[i].rpc.client_stats.get(proc)


@pytest.fixture
def world(runner):
    return KentWorld(runner)


def write_file(k, path, data, offset=0):
    fd = yield from k.open(path, OpenMode.WRITE, create=True)
    k.lseek(fd, offset)
    yield from k.write(fd, data)
    yield from k.close(fd)


def read_file(k, path, n=1 << 20, offset=0):
    fd = yield from k.open(path, OpenMode.READ)
    k.lseek(fd, offset)
    data = yield from k.read(fd, n)
    yield from k.close(fd)
    return data


def test_roundtrip(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"block tokens!")
        data = yield from read_file(k, "/data/f")
        return data

    assert runner.run(scenario()) == b"block tokens!"


def test_writes_are_delayed_under_exclusive_tokens(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"d" * 4096 * 3)

    runner.run(scenario())
    assert world.rpc(KPROC.WRITE) == 0  # delayed: nothing written through
    assert world.clients[0].cache.dirty_count() == 3
    assert world.rpc(KPROC.ACQUIRE) == 3  # one token per block


def test_token_reuse_needs_no_further_rpcs(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"x" * 4096)
        first = world.rpc(KPROC.ACQUIRE)
        for _ in range(5):
            yield from write_file(k, "/data/f", b"y" * 4096)
            yield from read_file(k, "/data/f")
        return first

    first = runner.run(scenario())
    assert world.rpc(KPROC.ACQUIRE) == first  # token cached across opens


def test_reader_downgrades_writer_and_sees_data(runner, world):
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"OWNED" * 900)  # ~4.4 KB dirty
        data = yield from read_file(k1, "/data/f")
        return data

    data = runner.run(scenario())
    assert data == b"OWNED" * 900
    # the revoke forced client 0's write-back
    assert world.rpc(KPROC.WRITE, i=0) > 0
    assert world.server_host.rpc.client_stats.get(KPROC.REVOKE) >= 1


def test_writer_invalidates_reader(runner, world):
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"A" * 4096)
        d1 = yield from read_file(k1, "/data/f")
        yield from write_file(k0, "/data/f", b"B" * 4096)
        d2 = yield from read_file(k1, "/data/f")
        return d1, d2

    d1, d2 = runner.run(scenario())
    assert d1 == b"A" * 4096
    assert d2 == b"B" * 4096


def test_disjoint_block_write_sharing_stays_cached(runner, world):
    """The case SNFS surrenders: two clients write different blocks of
    one file concurrently.  Block tokens keep both caching (delayed
    writes!) with no revocation ping-pong."""
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel

    def actor(k, offset, stamp):
        fd = yield from k.open("/data/shared", OpenMode.WRITE, create=True)
        for round_no in range(10):
            k.lseek(fd, offset)
            yield from k.write(fd, stamp * 4096)
            k.lseek(fd, offset)
            data = yield from k.read(fd, 4096)
            assert bytes(data) == stamp * 4096
            yield runner.sim.timeout(0.5)
        yield from k.close(fd)

    runner.run_all(
        actor(k0, 0, b"0"),
        actor(k1, 8192, b"1"),
    )
    # each client acquired its own block once; no revokes were needed
    # (block 0 for client0; block 2 for client1; plus read tokens)
    assert world.server_host.rpc.client_stats.get(KPROC.REVOKE) <= 2
    # and the delayed writes stayed delayed
    assert world.rpc(KPROC.WRITE, i=0) == 0
    assert world.rpc(KPROC.WRITE, i=1) == 0


def test_same_block_contention_serializes_correctly(runner, world):
    """Interleaved writes to one block: the token bounces, data stays
    coherent (last writer wins at every observation point)."""
    k0 = world.clients[0].kernel
    k1 = world.clients[1].kernel
    observed = []

    def writer(k, stamp, delay):
        yield runner.sim.timeout(delay)
        fd = yield from k.open("/data/hot", OpenMode.WRITE, create=True)
        for i in range(5):
            yield from runner_write(k, fd, stamp)
            yield runner.sim.timeout(1.0)
        yield from k.close(fd)

    def runner_write(k, fd, stamp):
        k.lseek(fd, 0)
        yield from k.write(fd, stamp * 64)

    def reader():
        yield runner.sim.timeout(4.0)
        for _ in range(4):
            data = yield from read_file(k0, "/data/hot", n=64)
            blob = bytes(data)
            if blob:
                observed.append(blob)
                assert blob in (b"X" * 64, b"Y" * 64), blob  # never torn
            yield runner.sim.timeout(1.0)

    runner.run_all(writer(k0, b"X", 0.0), writer(k1, b"Y", 0.4), reader())
    assert observed  # the reader genuinely sampled
    assert world.server_host.rpc.client_stats.get(KPROC.REVOKE) >= 2


def test_delete_cancels_and_releases(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/tmp", b"t" * 8192)
        yield from k.unlink("/data/tmp")

    runner.run(scenario())
    assert world.rpc(KPROC.WRITE) == 0  # delete-before-writeback again
    assert world.clients[0].cache.dirty_count() == 0
    assert len(world.mounts[0]._tokens) == 0
