"""Property tests for the local filesystem: model conformance + fsck."""

from hypothesis import given, settings, strategies as st

from repro.fs import (
    DirectoryNotEmpty,
    FileExists,
    IsADirectory,
    LocalFileSystem,
    NoSuchFile,
    NotADirectory,
)
from repro.sim import Simulator
from repro.storage import Disk


def drive(sim, gen):
    box = {}

    def wrapper():
        box["v"] = yield from gen

    proc = sim.spawn(wrapper())
    sim.run_until(proc, limit=1e7)
    if proc.exception is not None:
        proc.defuse()
        raise proc.exception
    return box.get("v")


NAMES = ["a", "b", "c", "d"]

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "mkdir", "remove", "rmdir", "rename", "write", "truncate"]),
        st.sampled_from(NAMES),
        st.sampled_from(NAMES),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=50,
)


@given(ops=op_strategy)
@settings(max_examples=60, deadline=None)
def test_namespace_ops_match_model_and_fsck_stays_clean(ops):
    """Random namespace churn in the root directory, mirrored against a
    plain dict model; the fsck invariant checker must stay clean after
    every operation."""
    sim = Simulator()
    fs = LocalFileSystem(sim, Disk(sim), fsid="prop")
    root = fs.root_inum
    model = {}  # name -> "file" | "dir" | bytes-length for files

    def scenario():
        for op, name, name2, blocks in ops:
            try:
                if op == "create":
                    yield from fs.create(root, name)
                    assert name not in model, "create should have failed"
                    model[name] = ("file", 0)
                elif op == "mkdir":
                    yield from fs.mkdir(root, name)
                    assert name not in model
                    model[name] = ("dir", 0)
                elif op == "remove":
                    yield from fs.remove(root, name)
                    assert model.get(name, ("", 0))[0] == "file"
                    del model[name]
                elif op == "rmdir":
                    yield from fs.rmdir(root, name)
                    assert model.get(name, ("", 0))[0] == "dir"
                    del model[name]
                elif op == "rename":
                    yield from fs.rename(root, name, root, name2)
                    assert name in model
                    entry = model.pop(name)
                    model[name2] = entry
                elif op == "write":
                    if blocks == 0:
                        continue
                    inum = yield from fs.lookup(root, name)
                    for bno in range(blocks):
                        yield from fs.write_block(inum, bno, b"z" * 64)
                    kind, size = model[name]
                    assert kind == "file", "write on a directory succeeded"
                    model[name] = (kind, max(size, (blocks - 1) * fs.block_size + 64))
                elif op == "truncate":
                    inum = yield from fs.lookup(root, name)
                    yield from fs.setattr(inum, size=0)
                    assert model.get(name, ("", 0))[0] == "file"
                    model[name] = ("file", 0)
            except (NoSuchFile, FileExists, IsADirectory, NotADirectory, DirectoryNotEmpty):
                # the model must agree that the op was illegal
                if op in ("create", "mkdir"):
                    assert name in model
                elif op == "remove":
                    assert model.get(name, ("", 0))[0] != "file"
                elif op == "rmdir":
                    assert model.get(name, ("", 0))[0] != "dir"
                elif op == "rename":
                    # legal only if src exists and the target is
                    # replaceable; a failure implies one of those broke
                    assert name not in model or name2 in model
                elif op in ("write", "truncate"):
                    # fails when the name is missing or is a directory
                    assert name not in model or model[name][0] == "dir"
            problems = fs.check()
            assert problems == [], problems

        # final cross-check: directory listing matches the model
        names = yield from fs.readdir(root)
        assert set(names) == set(model)
        for name, (kind, size) in model.items():
            inum = yield from fs.lookup(root, name)
            attr = yield from fs.getattr(inum)
            assert (attr.ftype.name == "DIRECTORY") == (kind == "dir")
            if kind == "file":
                assert attr.size == size

    drive(sim, scenario())


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),  # block number
            st.binary(min_size=1, max_size=64),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_block_write_read_roundtrip(writes):
    """Whatever was written last to each block is what reads back."""
    sim = Simulator()
    fs = LocalFileSystem(sim, Disk(sim), fsid="prop2")

    def scenario():
        inum = yield from fs.create(fs.root_inum, "f")
        latest = {}
        for bno, data in writes:
            yield from fs.write_block(inum, bno, data)
            latest[bno] = data
        for bno, data in latest.items():
            got = yield from fs.read_block(inum, bno)
            assert got == data
        assert fs.check() == []

    drive(sim, scenario())
