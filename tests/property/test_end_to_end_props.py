"""End-to-end property tests: read-your-writes over every protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.nfs import NfsClient, NfsServer
from repro.rfs import RfsClient, RfsServer
from repro.sim import Simulator
from repro.snfs import SnfsClient, SnfsServer


def build(protocol):
    sim = Simulator()
    network = Network(sim)
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    if protocol == "nfs":
        NfsServer(server_host, export)
        client_cls = NfsClient
    elif protocol == "snfs":
        SnfsServer(server_host, export)
        client_cls = SnfsClient
    else:
        RfsServer(server_host, export)
        client_cls = RfsClient
    host = Host(sim, network, "client", HostConfig.titan_client())
    client = client_cls("m0", host, "server")
    drive(sim, client.attach())
    host.kernel.mount("/data", client)
    return sim, host.kernel


def drive(sim, gen):
    box = {}

    def wrapper():
        box["v"] = yield from gen

    proc = sim.spawn(wrapper())
    sim.run_until(proc, limit=1e7)
    if proc.exception is not None:
        proc.defuse()
        raise proc.exception
    return box.get("v")


write_plan = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12000),  # offset
        st.binary(min_size=1, max_size=6000),  # data
        st.booleans(),  # close-and-reopen between writes?
    ),
    min_size=1,
    max_size=8,
)


@pytest.mark.parametrize("protocol", ["nfs", "snfs", "rfs"])
@given(plan=write_plan)
@settings(max_examples=25, deadline=None)
def test_read_your_writes_across_closes(protocol, plan):
    """Arbitrary offset writes, interleaved with close/reopen cycles,
    must read back exactly like a local bytearray — under every
    protocol, bugs and all (the NFS bug only costs RPCs, not bytes)."""
    sim, k = build(protocol)
    model = bytearray()

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        for offset, data, reopen in plan:
            if reopen:
                yield from k.close(fd)
                fd = yield from k.open("/data/f", OpenMode.WRITE)
            k.lseek(fd, offset)
            yield from k.write(fd, data)
            if len(model) < offset:
                model.extend(b"\x00" * (offset - len(model)))
            model[offset:offset + len(data)] = data
        yield from k.close(fd)
        fd = yield from k.open("/data/f", OpenMode.READ)
        chunks = []
        while True:
            piece = yield from k.read(fd, 8192)
            if not piece:
                break
            chunks.append(piece)
        yield from k.close(fd)
        return b"".join(chunks)

    got = drive(sim, scenario())
    assert got == bytes(model)
