"""Exhaustive and property-based conformance against the Table 4-1 spec.

The spec module (:mod:`repro.analysis.table41`) nails each single
transition; here we show the *whole reachable space* is closed over the
paper's seven states and that every callback the engine ever emits is a
legal shape for its source state — not just along the spec's canonical
setup scripts but along every open/close path (three clients, up to two
opens each, exhaustively) and along random longer traffic.
"""

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.analysis.table41 import CALLBACK_LEGALITY, STATES, conformance_findings
from repro.snfs.state_table import StateTable

CLIENTS = ("A", "B", "C")
OPS = tuple(
    (client, kind, write)
    for client in CLIENTS
    for kind, write in (
        ("open", False),
        ("open", True),
        ("close", False),
        ("close", True),
    )
)
KEY = "file"
MAX_OPENS_EACH = 2  # per client per kind; enough to exercise re-opens


def replay(path):
    """Fresh table driven through an op path; audits every step."""
    table = StateTable()
    for client, kind, write in path:
        before = table.state_of(KEY)
        if kind == "open":
            _grant, callbacks = table.open_file(KEY, client, write)
        else:
            callbacks = table.close_file(KEY, client, write)
        after = table.state_of(KEY)
        assert after.value in STATES
        legal = CALLBACK_LEGALITY[before.value]
        for cb in callbacks:
            shape = (bool(cb.writeback), bool(cb.invalidate))
            assert shape in legal, (
                "illegal callback %r out of %s (op %r)" % (shape, before, (client, kind, write))
            )
            assert cb.client in CLIENTS
    return table


def signature(table):
    """Canonical view of the table's configuration for the file."""
    entry = table.entry(KEY)
    if entry is None:
        return ("CLOSED", (), None)
    return (
        entry.state.value,
        tuple(
            sorted(
                (addr, info.readers, info.writers, info.caching)
                for addr, info in entry.clients.items()
            )
        ),
        entry.last_writer,
    )


def _op_allowed(table, op):
    client, kind, write = op
    entry = table.entry(KEY)
    info = entry.clients.get(client) if entry is not None else None
    count = 0
    if info is not None:
        count = info.writers if write else info.readers
    if kind == "open":
        return count < MAX_OPENS_EACH
    return True  # closes (including spurious ones) are always fair game


def test_exhaustive_closure_and_callback_legality():
    """BFS over every reachable configuration: the space is finite,
    every state is one of the paper's seven, and all seven appear."""
    start = signature(StateTable())
    seen = {start: ()}
    frontier = deque([()])
    while frontier:
        path = frontier.popleft()
        table = replay(path)
        for op in OPS:
            if not _op_allowed(table, op):
                continue
            child = replay(path + (op,))  # replay() audits callbacks
            sig = signature(child)
            if sig not in seen:
                seen[sig] = path + (op,)
                frontier.append(path + (op,))
    reached_states = {sig[0] for sig in seen}
    assert reached_states == set(STATES)
    # the space must be closed and finite; with counts capped at two the
    # BFS discovers 3570 configurations — a state-machine bug that
    # manufactures bogus configurations shows up as an explosion here
    assert len(seen) == 3570, len(seen)


def test_spec_conformance_is_part_of_the_property_suite():
    assert conformance_findings(StateTable) == []


op_strategy = st.tuples(
    st.sampled_from(CLIENTS),
    st.sampled_from(["open", "close"]),
    st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(op_strategy, max_size=40))
def test_random_traffic_stays_within_the_paper_states(ops):
    table = StateTable()
    audit = []
    table.observer = lambda event, key, client, before, after: audit.append(
        (event, client, before.value, after.value)
    )
    for client, kind, write in ops:
        before = table.state_of(KEY)
        if kind == "open":
            _grant, callbacks = table.open_file(KEY, client, write)
        else:
            callbacks = table.close_file(KEY, client, write)
        legal = CALLBACK_LEGALITY[before.value]
        for cb in callbacks:
            assert (bool(cb.writeback), bool(cb.invalidate)) in legal
        assert table.state_of(KEY).value in STATES
    # every audited transition saw states from the paper's seven
    for _event, _client, before, after in audit:
        assert before in STATES and after in STATES


@settings(max_examples=50, deadline=None)
@given(st.lists(op_strategy, max_size=40))
def test_identical_traffic_is_bit_identical(ops):
    """Determinism: two tables fed the same ops agree exactly —
    states, callbacks, grants, and version numbers."""

    def run():
        table = StateTable()
        log = []
        for client, kind, write in ops:
            if kind == "open":
                grant, callbacks = table.open_file(KEY, client, write)
                log.append(
                    (
                        grant.cache_enabled,
                        grant.version,
                        grant.prev_version,
                        [(cb.client, cb.writeback, cb.invalidate) for cb in callbacks],
                    )
                )
            else:
                callbacks = table.close_file(KEY, client, write)
                log.append(
                    [(cb.client, cb.writeback, cb.invalidate) for cb in callbacks]
                )
            log.append(table.state_of(KEY).value)
        return log

    assert run() == run()
