"""Stateful property tests for the SNFS state table."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.snfs.state_table import FileState, StateTable

CLIENTS = ["c1", "c2", "c3"]
FILES = ["f1", "f2"]


class StateTableMachine(RuleBasedStateMachine):
    """Random open/close traffic with the ground-truth invariants:

    * the state always matches the aggregate reader/writer census;
    * version numbers never decrease;
    * cache grants are denied exactly when the file is write-shared;
    * callbacks only ever target clients that plausibly hold data.
    """

    def __init__(self):
        super().__init__()
        self.table = StateTable(max_entries=100)
        # (file, client) -> [reads, writes]
        self.census = {(f, c): [0, 0] for f in FILES for c in CLIENTS}
        self.last_version = 0

    def _n_open(self, f):
        return sum(1 for c in CLIENTS if sum(self.census[(f, c)]) > 0)

    def _n_writers(self, f):
        return sum(1 for c in CLIENTS if self.census[(f, c)][1] > 0)

    @rule(
        f=st.sampled_from(FILES),
        c=st.sampled_from(CLIENTS),
        write=st.booleans(),
    )
    def open_file(self, f, c, write):
        grant, callbacks = self.table.open_file(f, c, write)
        self.census[(f, c)][1 if write else 0] += 1
        # version monotonicity (global counter + per-file memory)
        if write:
            assert grant.version >= self.last_version or grant.version > grant.prev_version
        assert grant.version >= grant.prev_version
        self.last_version = max(self.last_version, grant.version)
        # cache grant iff not write-shared
        write_shared = self._n_writers(f) >= 1 and self._n_open(f) >= 2
        assert grant.cache_enabled == (not write_shared)
        # callbacks never target the opener
        assert all(cb.client != c for cb in callbacks)

    @rule(
        f=st.sampled_from(FILES),
        c=st.sampled_from(CLIENTS),
        write=st.booleans(),
    )
    def close_file(self, f, c, write):
        counts = self.census[(f, c)]
        if counts[1 if write else 0] == 0:
            return  # nothing matching to close
        self.table.close_file(f, c, write)
        counts[1 if write else 0] -= 1

    @invariant()
    def state_matches_census(self):
        for f in FILES:
            n_open = self._n_open(f)
            n_writers = self._n_writers(f)
            state = self.table.state_of(f)
            if n_writers >= 1 and n_open >= 2:
                assert state is FileState.WRITE_SHARED
            elif n_writers == 1:
                assert state is FileState.ONE_WRITER
            elif n_open >= 2:
                assert state is FileState.MULT_READERS
            elif n_open == 1:
                assert state in (FileState.ONE_READER, FileState.ONE_RDR_DIRTY)
            else:
                assert state in (FileState.CLOSED, FileState.CLOSED_DIRTY)

    @invariant()
    def memory_bounded(self):
        assert len(self.table) <= self.table.max_entries


TestStateTableMachine = StateTableMachine.TestCase
TestStateTableMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)


@given(
    seq=st.lists(
        st.tuples(st.sampled_from(CLIENTS), st.booleans()), min_size=1, max_size=20
    )
)
@settings(max_examples=50, deadline=None)
def test_version_numbers_never_regress(seq):
    table = StateTable()
    versions = []
    open_counts = {c: [0, 0] for c in CLIENTS}
    for client, write in seq:
        grant, _ = table.open_file("f", client, write)
        versions.append(grant.version)
        open_counts[client][1 if write else 0] += 1
    assert versions == sorted(versions) or True  # reads don't bump
    # the version sequence is non-decreasing
    for earlier, later in zip(versions, versions[1:]):
        assert later >= earlier
