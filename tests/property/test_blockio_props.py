"""Property-based tests for the block I/O helpers."""

from hypothesis import given, settings, strategies as st

from repro.vfs import block_range, merge_block


@given(
    offset=st.integers(min_value=0, max_value=100_000),
    count=st.integers(min_value=0, max_value=100_000),
    block_size=st.sampled_from([512, 1024, 4096, 8192]),
)
def test_block_range_covers_exactly_the_byte_range(offset, count, block_size):
    blocks = list(block_range(offset, count, block_size))
    if count == 0:
        assert blocks == []
        return
    # every byte in [offset, offset+count) falls in some listed block
    first, last = blocks[0], blocks[-1]
    assert first * block_size <= offset < (first + 1) * block_size
    assert last * block_size < offset + count <= (last + 1) * block_size
    # blocks are consecutive
    assert blocks == list(range(first, last + 1))


@given(
    old=st.binary(max_size=200),
    block_offset=st.integers(min_value=0, max_value=300),
    data=st.binary(max_size=200),
)
def test_merge_block_overlay_semantics(old, block_offset, data):
    merged = merge_block(old, block_offset, data)
    # the overlay region holds exactly the new data
    assert merged[block_offset:block_offset + len(data)] == data
    # bytes before the overlay are preserved (zero-padded if past EOF)
    for i in range(min(block_offset, len(merged))):
        expected = old[i] if i < len(old) else 0
        assert merged[i] == expected
    # bytes after the overlay keep the old content
    tail_start = block_offset + len(data)
    assert merged[tail_start:] == old[tail_start:]
    # size is exactly what the overlay requires
    assert len(merged) == max(len(old), block_offset + len(data))


@given(old=st.binary(max_size=100), data=st.binary(max_size=100))
def test_merge_block_idempotent(old, data):
    once = merge_block(old, 0, data)
    twice = merge_block(once, 0, data)
    assert once == twice
