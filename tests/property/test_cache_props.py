"""Model-based property tests for the buffer cache."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.storage import BufferCache


def drive(sim, gen):
    box = {}

    def wrapper():
        box["v"] = yield from gen

    proc = sim.spawn(wrapper())
    sim.run_until(proc, limit=1e6)
    if proc.exception is not None:
        proc.defuse()
        raise proc.exception
    return box.get("v")


# operations: (op, file, block, payload)
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert_dirty", "lookup", "invalidate", "cancel"]),
        st.sampled_from(["f1", "f2", "f3"]),
        st.integers(min_value=0, max_value=5),
        st.binary(min_size=1, max_size=8),
    ),
    max_size=60,
)


@given(ops=ops_strategy, capacity=st.integers(min_value=2, max_value=16))
@settings(max_examples=60, deadline=None)
def test_cache_matches_reference_model(ops, capacity):
    """The cache must agree with a brute-force model on contents,
    modulo LRU eviction (evicted-but-clean entries may be missing from
    the cache, never stale in it)."""
    sim = Simulator()
    flushed = []

    def flush(buf):
        yield sim.timeout(0)
        flushed.append((buf.key, bytes(buf.data)))

    cache = BufferCache(sim, capacity_blocks=capacity, flush_fn=flush)
    model = {}  # (file, block) -> latest bytes

    def scenario():
        for op, f, b, payload in ops:
            if op == "insert":
                yield from cache.insert(f, b, payload)
                model[(f, b)] = payload
            elif op == "insert_dirty":
                yield from cache.insert(f, b, payload, dirty=True)
                model[(f, b)] = payload
            elif op == "lookup":
                buf = cache.lookup(f, b)
                if buf is not None:
                    assert bytes(buf.data) == model.get((f, b)), "stale data served"
            elif op == "invalidate":
                cache.invalidate_file(f)
                for key in [k for k in model if k[0] == f]:
                    del model[key]
            elif op == "cancel":
                cache.cancel_dirty_file(f)
                for key in [k for k in model if k[0] == f]:
                    del model[key]
            # capacity invariant holds at every step
            assert len(cache) <= capacity

    drive(sim, scenario())
    # whatever remains cached must match the model exactly
    for key in list(model):
        buf = cache.lookup(key[0], key[1])
        if buf is not None:
            assert bytes(buf.data) == model[key]
    # every flush wrote data that was correct at flush time (it must
    # have been *some* value previously inserted for that key)
    # and dirty blocks never exceed the cache size
    assert cache.dirty_count() <= capacity


@given(
    keys=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=80),
)
@settings(max_examples=40, deadline=None)
def test_lru_eviction_keeps_most_recent(keys):
    """After any access sequence, the cache holds the most recently
    touched distinct blocks (all clean, capacity 8)."""
    sim = Simulator()
    cache = BufferCache(sim, capacity_blocks=8)

    def scenario():
        for key in keys:
            if cache.lookup("f", key) is None:
                yield from cache.insert("f", key, b"x")

    drive(sim, scenario())
    # compute the expected LRU contents
    recent = []
    for key in keys:
        if key in recent:
            recent.remove(key)
        recent.append(key)
    expected = set(recent[-8:])
    actual = {b.block_no for b in cache.file_blocks("f")}
    assert actual == expected
