"""Lease recovery-by-expiry across a server crash (the NQNFS design).

A crashed lease server keeps no recovery log: after reboot it simply
refuses to *grant* leases until every lease that could have been
outstanding at the crash has expired — one lease term, plus the write
slack that covers delayed-write data a write-lease holder still owes.
Data and namespace RPCs stay up during the window precisely so those
holders can flush.  Clients retry fenced opens through the generic
:class:`~repro.proto.ConsistencyPolicy` recovery loop and reclaim by
flushing dirty gnodes and voiding their (now meaningless) lease modes.
"""

from repro.experiments.resilience import ResilienceBed
from repro.faults import CrashReboot, FaultPlan, Partition
from repro.fs import OpenMode
from repro.lease import DEFAULT_LEASE_TERM
from repro.lease.server import DEFAULT_WRITE_SLACK
from repro.nemesis import run_cell


def _write(kernel, path, data, create=False):
    fd = yield from kernel.open(path, OpenMode.WRITE, create=create, truncate=create)
    yield from kernel.write(fd, data)
    yield from kernel.close(fd)


def _read(kernel, path, n=1 << 16):
    fd = yield from kernel.open(path, OpenMode.READ)
    data = yield from kernel.read(fd, n)
    yield from kernel.close(fd)
    return data


def test_recovery_window_fences_opens_until_expiry():
    """An open during the post-reboot window blocks (retried through
    the policy seam) until ``lease_term + write_slack`` has elapsed."""
    bed = ResilienceBed("lease", n_clients=2, seed=7)
    metrics = bed.sim.enable_metrics()
    k0, k1 = bed.clients[0].kernel, bed.clients[1].kernel
    bed.run(_write(k0, "/data/f", b"x" * 64, create=True))

    out = {}

    def nemesis():
        yield bed.sim.timeout(1.0)
        bed.server_host.crash()
        yield bed.sim.timeout(2.0)
        bed.server_host.reboot()
        out["reboot_at"] = bed.sim.now

    def reader():
        # client1 has never opened the file, so its open needs a fresh
        # lease grant — the one RPC the recovery window fences.  (A
        # client with an unexpired pre-crash lease may keep using it:
        # that is the soundness argument for sizing the window at one
        # full term.)
        yield bed.sim.timeout(5.0)  # well inside the recovery window
        data = yield from _read(k1, "/data/f")
        out["read_done_at"] = bed.sim.now
        out["data"] = data

    bed.run_all(nemesis(), reader())
    bed.final_checks()

    window = DEFAULT_LEASE_TERM + DEFAULT_WRITE_SLACK
    assert out["data"] == b"x" * 64
    # the open could not complete before the window closed
    assert out["read_done_at"] >= out["reboot_at"] + window - 1.0
    assert metrics.counter("recovery.rejections").total() > 0
    assert bed.oracle.summary() == {}


def test_write_lease_holder_flushes_during_window():
    """Delayed-write data owed by a pre-crash write-lease holder lands
    during the window (data RPCs are not fenced), so an acked close is
    durable even though the server lost every lease record."""
    bed = ResilienceBed("lease", n_clients=2, seed=11)
    bed.sim.enable_metrics()
    k0, k1 = bed.clients[0].kernel, bed.clients[1].kernel
    bed.run(_write(k0, "/data/g", b"pre-crash" + b"." * 55, create=True))

    def nemesis():
        yield bed.sim.timeout(2.0)
        bed.server_host.crash()
        yield bed.sim.timeout(3.0)
        bed.server_host.reboot()

    def writer():
        # committed just before the crash: the close's writeback may
        # still be delayed client-side when the power fails
        yield bed.sim.timeout(0.5)
        yield from _write(k0, "/data/g", b"final-value" + b"." * 53)

    def late_reader():
        # opens after the window: must see the writer's committed data
        yield bed.sim.timeout(2.0 + 3.0 + DEFAULT_LEASE_TERM + DEFAULT_WRITE_SLACK + 5.0)
        data = yield from _read(k1, "/data/g")
        assert data.startswith(b"final-value")

    bed.run_all(nemesis(), writer(), late_reader())
    bed.final_checks()
    assert bed.oracle.summary() == {}


def test_lease_partition_then_heal_then_crash_cell_is_clean():
    """The compound nemesis schedule: a client partitioned away, healed,
    then the server crashes — retransmissions and the recovery window
    interleave.  The oracle must stay silent and the recovery fence
    must actually have engaged."""
    cell = run_cell("lease", "seq-sharing", "partition-heal-crash", seed=3)
    assert cell.error is None
    assert cell.violations == {}
    assert cell.verdict == "pass"
    assert cell.recovery_rejections > 0


def test_lease_crash_during_grace_cell_is_clean():
    """A second crash inside the first recovery window restarts the
    expiry clock under a fresh boot epoch; clients re-reclaim."""
    cell = run_cell("lease", "seq-sharing", "crash-during-grace", seed=3)
    assert cell.error is None
    assert cell.violations == {}
    assert cell.verdict == "pass"
    assert cell.recovery_rejections > 0


def test_recovery_is_deterministic():
    a = run_cell("lease", "seq-sharing", "crash-during-grace", seed=9)
    b = run_cell("lease", "seq-sharing", "crash-during-grace", seed=9)
    assert a.as_dict() == b.as_dict()
