"""The NQNFS-style lease protocol — the repro.proto proof of concept.

Covers the protocol's four distinguishing behaviors: free steady-state
cache hits under a live lease, renewal piggybacked on getattr, recall
of conflicting holders (with delayed-data writeback), and the expiry
economy — a lapsed read lease needs no recall callback, and a crashed
client needs no recovery protocol at all.
"""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.lease import DEFAULT_LEASE_TERM, LeaseServer, mount_lease
from repro.net import Network


class LeaseWorld:
    def __init__(self, runner, n_clients=2, lease_term=DEFAULT_LEASE_TERM):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = LeaseServer(self.server_host, self.export, lease_term=lease_term)
        self.clients = []
        self.mounts = []
        for i in range(n_clients):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            mount = runner.run(mount_lease(host, "server", "/data"))
            self.clients.append(host)
            self.mounts.append(mount)

    def rpc(self, proc, i=0):
        return self.clients[i].rpc.client_stats.get(proc)

    def vacates_sent(self):
        return self.server_host.rpc.client_stats.get("lease.vacate")

    def wait(self, dt):
        def pause():
            yield self.runner.sim.timeout(dt)

        self.runner.run(pause())


@pytest.fixture
def world(runner):
    return LeaseWorld(runner)


def write_file(k, path, data):
    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def read_file(k, path, n=1 << 20):
    fd = yield from k.open(path, OpenMode.READ)
    data = yield from k.read(fd, n)
    yield from k.close(fd)
    return data


def test_roundtrip(runner, world):
    k = world.clients[0].kernel

    def scenario():
        yield from write_file(k, "/data/f", b"leased!")
        return (yield from read_file(k, "/data/f"))

    assert runner.run(scenario()) == b"leased!"


def test_steady_state_costs_nothing_on_the_wire(runner, world):
    """Repeated open/read/close under a live lease: zero consistency
    RPCs — the economy SNFS's per-use open/close can never reach.
    (Path lookups still cost; the name cache is a separate layer.)"""
    k = world.clients[0].kernel
    runner.run(write_file(k, "/data/f", b"hot file"))
    runner.run(read_file(k, "/data/f"))
    procs = ("lease.open", "lease.close", "lease.getattr",
             "lease.read", "lease.write")
    before = {p: world.rpc(p) for p in procs}
    for _ in range(10):
        assert runner.run(read_file(k, "/data/f")) == b"hot file"
    assert {p: world.rpc(p) for p in procs} == before


def test_lapsed_lease_renewed_by_getattr_not_reopened(runner, world):
    """After expiry with no conflict, the next use renews via the
    getattr piggyback — no second lease.open."""
    k = world.clients[0].kernel
    runner.run(write_file(k, "/data/f", b"data"))
    runner.run(read_file(k, "/data/f"))
    opens = world.rpc("lease.open")
    getattrs = world.rpc("lease.getattr")
    world.wait(DEFAULT_LEASE_TERM + 1.0)
    assert runner.run(read_file(k, "/data/f")) == b"data"
    assert world.rpc("lease.open") == opens  # no full reopen
    assert world.rpc("lease.getattr") == getattrs + 1  # one renewal


def test_conflicting_open_recalls_delayed_writes(runner, world):
    """Writer closes without flushing (delayed writes survive close);
    the reader's open recalls them — close-to-open via server pull."""
    kw = world.clients[0].kernel
    kr = world.clients[1].kernel
    runner.run(write_file(kw, "/data/f", b"delayed data"))
    writes_before_recall = world.rpc("lease.write", 0)
    assert runner.run(read_file(kr, "/data/f")) == b"delayed data"
    assert world.vacates_sent() == 1
    # the recall (not the writer's close) flushed the dirty blocks
    assert world.rpc("lease.write", 0) > writes_before_recall


def test_writer_keeps_cache_after_downgrade(runner, world):
    """A reader's open downgrades the writer (writeback, no
    invalidate): the writer's next read is still free."""
    kw = world.clients[0].kernel
    kr = world.clients[1].kernel
    runner.run(write_file(kw, "/data/f", b"shared"))
    runner.run(read_file(kr, "/data/f"))
    reads_before = world.rpc("lease.read", 0)
    assert runner.run(read_file(kw, "/data/f")) == b"shared"
    assert world.rpc("lease.read", 0) == reads_before


def test_expired_read_lease_needs_no_recall(runner, world):
    """The NQNFS economy: a write grant skips vacate callbacks to
    read holders whose leases already lapsed."""
    kw = world.clients[0].kernel
    kr = world.clients[1].kernel
    runner.run(write_file(kw, "/data/f", b"v1"))
    runner.run(read_file(kr, "/data/f"))
    vacates = world.vacates_sent()  # reader's open recalled the writer
    world.wait(DEFAULT_LEASE_TERM + 1.0)  # reader's lease lapses
    runner.run(write_file(kw, "/data/f", b"v2"))
    assert world.vacates_sent() == vacates  # no callback to the reader
    # and the reader still sees fresh data (its lapsed lease forces
    # revalidation on the next open)
    assert runner.run(read_file(kr, "/data/f")) == b"v2"


def test_expired_write_lease_still_recalled(runner, world):
    """A lapsed *write* lease is recalled anyway: the holder may sit
    on delayed writes worth saving."""
    kw = world.clients[0].kernel
    kr = world.clients[1].kernel
    runner.run(write_file(kw, "/data/f", b"sleepy writer"))
    world.wait(DEFAULT_LEASE_TERM + 1.0)
    assert runner.run(read_file(kr, "/data/f")) == b"sleepy writer"
    assert world.vacates_sent() == 1


def test_crashed_client_needs_no_recovery(runner, world):
    """Leases ARE the recovery story: a dead writer's claim simply
    expires, and the vacate attempt failing forfeits it — no §2.4
    grace period, no state rebuild."""
    kw = world.clients[0].kernel
    kr = world.clients[1].kernel
    runner.run(write_file(kw, "/data/f", b"doomed"))
    runner.run(read_file(kr, "/data/f"))  # recall drains the writer first
    world.clients[0].crash()
    world.wait(DEFAULT_LEASE_TERM + 1.0)
    # the survivor can still open for write; the dead host's lease is
    # gone (expired read lease: not even a callback is attempted)
    runner.run(write_file(kr, "/data/f", b"alive"))
    assert runner.run(read_file(kr, "/data/f")) == b"alive"
    assert world.server.lease_count() >= 1  # the survivor's lease


def test_server_lease_state_is_time_bounded(runner, world):
    """Unlike the SNFS state table, lease state evaporates: after one
    term of silence the server tracks nothing live."""
    k = world.clients[0].kernel
    runner.run(write_file(k, "/data/f", b"x"))
    assert world.server.lease_count() == 1
    world.wait(DEFAULT_LEASE_TERM + 1.0)
    assert world.server.lease_count() == 0


def test_remove_drops_lease_state(runner, world):
    k = world.clients[0].kernel
    runner.run(write_file(k, "/data/f", b"x"))

    def rm():
        yield from k.unlink("/data/f")

    runner.run(rm())
    assert world.server.lease_count() == 0
