"""The unified mount configuration (repro.proto.config).

One layered dataclass now covers every protocol; the old per-protocol
config classes are aliases of it, so existing call sites (and pickled
experiment configs) keep working.
"""

from repro.nfs import NfsClientConfig
from repro.proto import RemoteFsConfig
from repro.snfs import SnfsClientConfig


def test_old_config_names_are_aliases():
    assert NfsClientConfig is RemoteFsConfig
    assert SnfsClientConfig is RemoteFsConfig


def test_defaults_cover_every_layer():
    cfg = RemoteFsConfig()
    # attribute-cache layer (§2.1)
    assert cfg.attr_min_interval == 3.0
    assert cfg.attr_max_interval == 150.0
    assert cfg.getattr_on_open
    # write-policy layer
    assert cfg.async_writes
    assert not cfg.write_through
    assert cfg.cancel_on_delete
    # the Ultrix client bug (§5.2) is on by default for fidelity
    assert cfg.invalidate_on_close
    # name-cache layer: off (Table 5-2's lookup traffic depends on it)
    assert cfg.name_cache_ttl == 0.0
    assert not cfg.consistent_dir_cache
    # delayed close (§6.2): off by default
    assert not cfg.delayed_close
    assert cfg.delayed_close_timeout == 180.0


def test_protocols_layer_their_own_defaults():
    from repro.kent import KentClient
    from repro.lease import LeaseClient

    # token/lease consistency protects the cache across closes, so
    # these protocols drop the NFS invalidate-on-close artifact
    assert not KentClient.default_config().invalidate_on_close
    assert not LeaseClient.default_config().invalidate_on_close
    # but everything else stays at the shared baseline
    assert KentClient.default_config().attr_min_interval == 3.0


def test_rfs_forces_invalidate_on_close_off(runner):
    """RFS consistency comes from server invalidations; the client
    must override the bug even in a caller-supplied config."""
    from repro.host import Host, HostConfig
    from repro.net import Network
    from repro.rfs import RfsClient, RfsServer

    sim = runner.sim
    net = Network(sim)
    server_host = Host(sim, net, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    RfsServer(server_host, export)
    client_host = Host(sim, net, "c", HostConfig.titan_client())
    cfg = RemoteFsConfig(invalidate_on_close=True)
    client = RfsClient("m", client_host, "server", config=cfg)
    assert not client.config.invalidate_on_close


def test_one_config_drives_any_protocol(runner):
    """The same config object mounts NFS and SNFS: the union dataclass
    replaced the two diverging per-protocol ones."""
    from repro.host import Host, HostConfig
    from repro.net import Network
    from repro.nfs import NfsClient, NfsServer
    from repro.snfs import SnfsClient, SnfsServer

    sim = runner.sim
    net = Network(sim)
    nfs_host = Host(sim, net, "nfs-srv", HostConfig.titan_server())
    NfsServer(nfs_host, nfs_host.add_local_fs("/export", fsid="nfsfs"))
    snfs_host = Host(sim, net, "snfs-srv", HostConfig.titan_server())
    SnfsServer(snfs_host, snfs_host.add_local_fs("/export", fsid="snfsfs"))

    cfg = RemoteFsConfig(name_cache_ttl=30.0, async_writes=False)
    client_host = Host(sim, net, "c", HostConfig.titan_client())
    nfs = NfsClient("m1", client_host, "nfs-srv", config=cfg)
    snfs = SnfsClient("m2", client_host, "snfs-srv", config=cfg)
    runner.run(nfs.attach())
    runner.run(snfs.attach())
    assert nfs.config is cfg and snfs.config is cfg
    assert nfs.dnlc.enabled and snfs.dnlc.enabled
