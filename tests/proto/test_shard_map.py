"""Unit tests for the shard placement map (repro.proto.shard)."""

import zlib

import pytest

from repro.fs import CrossShardError, InvalidArgument
from repro.proto import SHARD_STRATEGIES, ShardMap


def test_strategies_constant_matches_accepted_values():
    assert set(SHARD_STRATEGIES) == {"subtree", "hash"}
    for strategy in SHARD_STRATEGIES:
        ShardMap(2, strategy=strategy)


def test_constructor_validation():
    with pytest.raises(ValueError):
        ShardMap(0)
    with pytest.raises(ValueError):
        ShardMap(2, strategy="round-robin")
    with pytest.raises(ValueError):
        ShardMap(2, default_shard=2)
    with pytest.raises(ValueError):
        ShardMap(2, assignments={"src": 5})


def test_subtree_owner_uses_assignments_and_default():
    m = ShardMap(3, strategy="subtree", assignments={"src": 1, "obj": 2})
    assert m.owner("src") == 1
    assert m.owner("obj") == 2
    assert m.owner("unassigned") == m.default_shard == 0


def test_hash_owner_is_crc32_and_deterministic():
    m = ShardMap(4, strategy="hash")
    for name in ("alpha", "beta", "gamma", "delta", "user7"):
        assert m.owner(name) == zlib.crc32(name.encode()) % 4
    # a second map agrees: no per-process salt
    m2 = ShardMap(4, strategy="hash")
    assert all(
        m.owner("n%d" % i) == m2.owner("n%d" % i) for i in range(64)
    )


def test_hash_strategy_spreads_names():
    m = ShardMap(4, strategy="hash")
    owners = {m.owner("user%d" % i) for i in range(64)}
    assert owners == {0, 1, 2, 3}


def test_explicit_assignment_overrides_hash():
    m = ShardMap(4, strategy="hash", assignments={"pinned": 3})
    assert m.owner("pinned") == 3


def test_assign_bumps_version_only_on_change():
    m = ShardMap(2, strategy="subtree")
    v0 = m.version
    m.assign("src", 1)
    assert m.version == v0 + 1
    m.assign("src", 1)  # no-op reassignment: version stays put
    assert m.version == v0 + 1
    m.assign("src", 0)
    assert m.version == v0 + 2
    with pytest.raises(ValueError):
        m.assign("src", 9)


def test_describe_is_json_friendly():
    m = ShardMap(2, strategy="subtree", assignments={"b": 1, "a": 0})
    d = m.describe()
    assert d["n_shards"] == 2
    assert d["strategy"] == "subtree"
    assert d["assignments"] == {"a": 0, "b": 1}
    assert d["version"] == m.version


def test_cross_shard_error_is_exdev_and_invalid_argument():
    # callers that handle generic cross-filesystem EINVALs keep working;
    # callers that care see EXDEV
    assert issubclass(CrossShardError, InvalidArgument)
    assert CrossShardError.errno_name == "EXDEV"
