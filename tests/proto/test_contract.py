"""Cross-protocol contract suite (refactor safety net).

One simulation, five protocol stacks side by side — NFS, SNFS, RFS,
Kent, lease — each with its own server host, all mounted on the same
two client hosts.  The same workloads run against every mount, and we
assert the contracts the protocols document:

* **serial sharing** (write, close, then read): every protocol —
  including NFS, whose guarantee covers exactly this case — satisfies
  close-to-open consistency, judged by the ConsistencyOracle;
* **concurrent write-sharing**: the consistency protocols (SNFS, RFS,
  Kent, lease) serve zero stale reads; NFS serves stale data inside
  its probe window (§2.3);
* **durability**: no acknowledged write is ever lost, and the final
  file contents at every server agree.
"""

import pytest

from repro.faults import ConsistencyOracle
from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.kent import KentServer, mount_kent
from repro.lease import LeaseServer, mount_lease
from repro.net import Network, NetworkConfig
from repro.nfs import NfsServer, mount_nfs
from repro.rfs import RfsServer, mount_rfs
from repro.snfs import SnfsServer, mount_snfs
from repro.workloads import run_sharing_experiment

STACKS = {
    "nfs": (NfsServer, mount_nfs),
    "snfs": (SnfsServer, mount_snfs),
    "rfs": (RfsServer, mount_rfs),
    "kent": (KentServer, mount_kent),
    "lease": (LeaseServer, mount_lease),
}
PROTOCOLS = tuple(sorted(STACKS))
STRONG = tuple(p for p in PROTOCOLS if p != "nfs")


class World:
    """Five protocol stacks in one simulation."""

    def __init__(self, runner):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim, NetworkConfig(seed=17))
        self.servers = {}
        self.server_hosts = {}
        self.oracle = ConsistencyOracle()
        for proto in PROTOCOLS:
            server_cls, _ = STACKS[proto]
            host = Host(sim, self.network, "srv-%s" % proto,
                        HostConfig.titan_server())
            export = host.add_local_fs("/export", fsid="%s-fs" % proto)
            self.servers[proto] = server_cls(host, export)
            self.server_hosts[proto] = host
            self.oracle.watch_server(self.servers[proto])
        self.clients = []
        for i in range(2):
            host = Host(sim, self.network, "c%d" % i, HostConfig.titan_client())
            for proto in PROTOCOLS:
                _, mount = STACKS[proto]
                runner.run(mount(host, "srv-%s" % proto, "/%s" % proto))
            self.oracle.watch_kernel(host.kernel)
            self.clients.append(host)

    def wait(self, dt):
        def pause():
            yield self.runner.sim.timeout(dt)

        self.runner.run(pause())

    def server_file(self, proto, name):
        """Final content of a file as the server's own disk sees it."""
        k = self.server_hosts[proto].kernel

        def peek():
            fd = yield from k.open("/export/" + name, OpenMode.READ)
            data = yield from k.read(fd, 1 << 20)
            yield from k.close(fd)
            return bytes(data)

        return self.runner.run(peek())


@pytest.fixture(scope="module")
def world():
    # module-scoped: building 7 hosts x 5 stacks is the expensive part,
    # and the phases below are designed to run in sequence
    from tests.conftest import SimRunner

    return World(SimRunner())


def _write(k, path, data):
    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def _read(k, path):
    fd = yield from k.open(path, OpenMode.READ)
    data = yield from k.read(fd, 1 << 20)
    yield from k.close(fd)
    return bytes(data)


def test_serial_sharing_is_consistent_everywhere(world):
    """Alternating write/close then open/read across two clients:
    close-to-open holds for every protocol (NFS documents exactly
    this guarantee), judged by the oracle watching both kernels."""
    runner = world.runner
    for proto in PROTOCOLS:
        path = "/%s/serial" % proto
        for round_no in range(3):
            payload = ("%s round %d" % (proto, round_no)).encode()
            runner.run(_write(world.clients[0].kernel, path, payload))
            world.wait(1.0)
            got = runner.run(_read(world.clients[1].kernel, path))
            assert got == payload, "%s round %d: %r" % (proto, round_no, got)
            world.wait(1.0)
    assert world.oracle.summary() == {}, world.oracle.violations


def test_concurrent_sharing_matches_documented_guarantees(world):
    """The §2.3 experiment against all five mounts in one sim: the
    consistency protocols never serve stale data; NFS does."""
    runner = world.runner
    sim = runner.sim
    stale = {}
    for proto in PROTOCOLS:
        wp, rp, result = run_sharing_experiment(
            sim,
            world.clients[0].kernel,
            world.clients[1].kernel,
            "/%s/shared" % proto,
            n_updates=8,
            write_period=4.0,
            read_period=1.0,
        )
        from repro.sim import AllOf

        gate = AllOf(sim, [wp, rp])
        gate.defuse()
        sim.run_until(gate, limit=1e9)
        for procs in (wp, rp):
            if procs.exception is not None:
                procs.defuse()
                raise procs.exception
        assert result.total_reads > 8, proto
        stale[proto] = result.stale_reads
    for proto in STRONG:
        assert stale[proto] == 0, "%s served stale data" % proto
    assert stale["nfs"] > 0, "NFS should expose its probe window"


def test_final_server_contents_agree(world):
    """After everything settles, every server holds the same bytes for
    the shared file: no protocol lost or mangled the last commit."""
    runner = world.runner
    # force any remaining delayed writes home (Kent/lease retain dirty
    # data past close until recalled; fsync drains it)
    for proto in PROTOCOLS:
        k = world.clients[0].kernel

        def flush(path="/%s/shared" % proto):
            fd = yield from k.open(path, OpenMode.WRITE)
            yield from k.fsync(fd)
            yield from k.close(fd)

        runner.run(flush())
    contents = {p: world.server_file(p, "shared") for p in PROTOCOLS}
    reference = contents["snfs"]
    assert reference.startswith(b"seq=")
    for proto in PROTOCOLS:
        assert contents[proto] == reference, (
            "server contents diverge: %s" % proto
        )


def test_no_acknowledged_write_was_lost(world):
    """Every write any server acked is reflected in its final file
    contents (the oracle's durability check, across all five)."""
    assert world.oracle.check_lost_acked_writes() == 0
    assert world.oracle.ok, world.oracle.violations
