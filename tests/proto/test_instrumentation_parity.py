"""Instrumentation parity across protocols (observability satellite).

The SNFS stack always emitted rpc.latency / rpc.retrans metrics and
``rpc.call:*`` trace spans because everything went through the shared
RPC layer; after the repro.proto refactor every protocol's traffic
goes through the same ``_call`` path.  One test per protocol verifies
the metrics and spans actually land, with per-proc labels.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, LossBurst
from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.kent import KentServer, mount_kent
from repro.lease import LeaseServer, mount_lease
from repro.net import Network, NetworkConfig
from repro.nfs import NfsServer, mount_nfs
from repro.rfs import RfsServer, mount_rfs
from repro.snfs import SnfsServer, mount_snfs

SERVERS = {
    "nfs": NfsServer,
    "snfs": SnfsServer,
    "rfs": RfsServer,
    "kent": KentServer,
    "lease": LeaseServer,
}
MOUNTS = {
    "nfs": mount_nfs,
    "snfs": mount_snfs,
    "rfs": mount_rfs,
    "kent": mount_kent,
    "lease": mount_lease,
}
PROTOCOLS = sorted(SERVERS)


def _parse_labels(key):
    """'endpoint=c0,proc=nfs.write' -> {'endpoint': 'c0', ...}"""
    return dict(kv.split("=", 1) for kv in key.split(",") if kv)


def build(runner, protocol, seed=3):
    sim = runner.sim
    metrics = sim.enable_metrics()
    tracer = sim.enable_tracer()
    net = Network(sim, NetworkConfig(seed=seed))
    server_host = Host(sim, net, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    SERVERS[protocol](server_host, export)
    client_host = Host(sim, net, "c0", HostConfig.titan_client())
    runner.run(MOUNTS[protocol](client_host, "server", "/data"))
    return metrics, tracer, net, client_host


def workload(kernel):
    fd = yield from kernel.open("/data/f", OpenMode.WRITE, create=True)
    yield from kernel.write(fd, b"x" * 10000)
    yield from kernel.fsync(fd)
    yield from kernel.close(fd)
    fd = yield from kernel.open("/data/f", OpenMode.READ)
    yield from kernel.read(fd, 10000)
    yield from kernel.close(fd)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_latency_histogram_with_per_proc_labels(runner, protocol):
    metrics, tracer, net, client = build(runner, protocol)
    runner.run(workload(client.kernel))
    latency = metrics.histogram("rpc.latency")
    prefix = protocol + "."
    procs = sorted(
        labels["proc"]
        for labels in map(_parse_labels, latency.as_dict())
        if labels.get("endpoint") == "c0" and labels["proc"].startswith(prefix)
    )
    # every protocol's data path shows up under its own proc names
    # (no .read assertions: the consistency protocols serve the
    # re-read from cache, which is their entire reason to exist)
    assert any(p.endswith(".write") for p in procs), procs
    assert any(p.endswith(".lookup") for p in procs), procs
    assert len(procs) >= 3, procs
    for proc in procs:
        assert latency.mean(proc=proc, endpoint="c0", server="server") > 0


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_trace_spans_cover_client_calls(runner, protocol):
    metrics, tracer, net, client = build(runner, protocol)
    runner.run(workload(client.kernel))
    spans = tracer.find_spans(prefix="rpc.call:%s." % protocol, track="c0")
    assert spans, "no rpc.call spans for %s" % protocol
    served = tracer.find_spans(prefix="rpc.serve:%s." % protocol)
    assert served, "no rpc.serve spans for %s" % protocol
    # matched begin/end: span durations are well-defined
    assert all(s.t1 is not None for s in spans)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_retrans_counter_under_loss(runner, protocol):
    metrics, tracer, net, client = build(runner, protocol)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(events=(LossBurst(start=0.0, duration=600.0, rate=0.35),), seed=7)
    )
    runner.run(workload(client.kernel), limit=1e6)
    retrans = metrics.counter("rpc.retrans")
    assert retrans.total() > 0, "no retransmits despite 35%% loss"
    labelled = sum(
        count
        for key, count in sorted(retrans.as_dict().items())
        if _parse_labels(key).get("endpoint") == "c0"
        and _parse_labels(key)["proc"].startswith(protocol + ".")
    )
    # client-side retransmits all carry this protocol's proc labels
    # (the server may contribute its own for pushes)
    assert labelled > 0
