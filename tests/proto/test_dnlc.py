"""Unit tests for the shared name cache (repro.proto.dnlc).

One DNLC implementation now serves every protocol; these tests pin
down the purge semantics that keep it from serving stale entries.
"""

from repro.fs import FileType
from repro.proto import NameCache, RemoteFsConfig


def make_cache(runner, ttl=0.0, consistent=False):
    cfg = RemoteFsConfig(name_cache_ttl=ttl, consistent_dir_cache=consistent)
    return NameCache(runner.sim, cfg), cfg


def test_disabled_by_default(runner):
    cache, _ = make_cache(runner)
    cache.put("d", "f", fid=1, ftype=FileType.REGULAR)
    assert cache.get("d", "f") is None
    assert len(cache) == 0


def test_ttl_hit_and_expiry(runner):
    cache, _ = make_cache(runner, ttl=10.0)
    cache.put("d", "f", fid=1, ftype=FileType.REGULAR)
    assert cache.get("d", "f") == (1, FileType.REGULAR)

    def wait():
        yield runner.sim.timeout(11.0)

    runner.run(wait())
    # expired entries are dropped on lookup, not served stale
    assert cache.get("d", "f") is None
    assert len(cache) == 0


def test_consistent_mode_never_expires(runner):
    cache, _ = make_cache(runner, consistent=True)
    cache.put("d", "f", fid=1, ftype=FileType.REGULAR)

    def wait():
        yield runner.sim.timeout(1e6)

    runner.run(wait(), limit=1e7)
    assert cache.get("d", "f") == (1, FileType.REGULAR)


def test_purge_on_remove_semantics(runner):
    """remove/rename purge exactly the (dir, name) pair they touch."""
    cache, _ = make_cache(runner, ttl=60.0)
    cache.put("d", "a", fid=1, ftype=FileType.REGULAR)
    cache.put("d", "b", fid=2, ftype=FileType.REGULAR)
    cache.purge("d", "a")
    assert cache.get("d", "a") is None
    assert cache.get("d", "b") == (2, FileType.REGULAR)
    # purging an absent entry is a no-op, not an error
    cache.purge("d", "never-cached")


def test_rename_purges_both_directories(runner):
    """The client purges source and destination names on rename; a
    stale destination entry must not survive."""
    cache, _ = make_cache(runner, ttl=60.0)
    cache.put("d1", "old", fid=1, ftype=FileType.REGULAR)
    cache.put("d2", "new", fid=2, ftype=FileType.REGULAR)
    # rename d1/old -> d2/new: both ends go
    cache.purge("d1", "old")
    cache.purge("d2", "new")
    assert cache.get("d1", "old") is None
    assert cache.get("d2", "new") is None


def test_purge_dir_drops_whole_directory(runner):
    cache, _ = make_cache(runner, consistent=True)
    cache.put("d1", "a", fid=1, ftype=FileType.REGULAR)
    cache.put("d1", "b", fid=2, ftype=FileType.REGULAR)
    cache.put("d2", "c", fid=3, ftype=FileType.REGULAR)
    cache.purge_dir("d1")
    assert cache.get("d1", "a") is None
    assert cache.get("d1", "b") is None
    assert cache.get("d2", "c") == (3, FileType.REGULAR)


def test_clear_empties_everything(runner):
    cache, _ = make_cache(runner, consistent=True)
    cache.put("d", "a", fid=1, ftype=FileType.REGULAR)
    cache.clear()
    assert len(cache) == 0
    assert cache.get("d", "a") is None


def test_config_read_live_not_snapshotted(runner):
    """Flipping the config after construction takes effect: ablations
    toggle caching without rebuilding mounts."""
    cache, cfg = make_cache(runner)
    assert not cache.enabled
    cfg.name_cache_ttl = 30.0
    assert cache.enabled
    cache.put("d", "f", fid=1, ftype=FileType.REGULAR)
    assert cache.get("d", "f") == (1, FileType.REGULAR)
