"""Serial <-> parallel equivalence, cell kind by cell kind.

The pool's whole determinism argument is that a cell computes the same
result and digest in any process.  These tests run one representative
spec of every registered kind at ``-j1`` and ``-j2`` and require the
rows to be byte-identical once wall-clock accounting is stripped.
"""

import json

import pytest

from repro.nemesis.matrix import cell_seed
from repro.parallel import CellSpec, run_cells

WALL_KEYS = ("wall_seconds", "wall_seconds_repeats", "events_per_sec")


def _stripped(row):
    """The identity-bearing part of a row: no wall clocks anywhere."""
    row = json.loads(json.dumps({k: v for k, v in row.items() if k not in WALL_KEYS}))
    if isinstance(row.get("result"), dict):
        for key in WALL_KEYS:
            row["result"].pop(key, None)
    return row


def _assert_equivalent(spec):
    (serial,) = run_cells([spec], jobs=1)
    # jobs=2 with a single spec would take the serial shortcut; pad with
    # an echo cell so the real pool executes the spec under test.
    pooled = run_cells([spec, CellSpec(kind="_test-echo", name="pad")], jobs=2)[0]
    assert serial["error"] is None, serial["error"]
    assert pooled["error"] is None, pooled["error"]
    assert serial["digest"] == pooled["digest"]
    assert _stripped(serial) == _stripped(pooled)
    return serial


def test_bench_engine_cell_equivalence():
    row = _assert_equivalent(
        CellSpec(kind="bench-engine", name="event-pingpong", params={"quick": True, "repeats": 1})
    )
    assert row["result"]["name"] == "event-pingpong"
    assert row["digest"]


def test_bench_workload_cell_equivalence():
    row = _assert_equivalent(
        CellSpec(
            kind="bench-workload",
            name="andrew-2client-nfs",
            params={"quick": True, "digests": True},
        )
    )
    assert row["result"]["ops"] > 0
    assert row["digest"]


def test_nemesis_cell_equivalence():
    cid = "snfs/seq-sharing/flaky-net"
    row = _assert_equivalent(
        CellSpec(
            kind="nemesis-cell",
            name=cid,
            params={"protocol": "snfs", "workload": "seq-sharing", "plan": "flaky-net"},
            seed=cell_seed(cid, 1989),
        )
    )
    assert row["result"]["id"] == cid
    assert row["result"]["verdict"] in ("pass", "expected-divergence")


def test_golden_output_cell_equivalence():
    row = _assert_equivalent(CellSpec(kind="golden-output", name="consistency-2-3"))
    assert len(row["digest"]) == 64


def test_golden_traced_cell_equivalence():
    row = _assert_equivalent(CellSpec(kind="golden-traced", name="micro-5-3-traced"))
    assert row["digest"]


def test_obs_baseline_cell_equivalence():
    row = _assert_equivalent(
        CellSpec(
            kind="obs-baseline",
            name="obs-andrew-nfs",
            params={"protocol": "nfs", "scenario": "andrew-2client"},
            seed=1989,
        )
    )
    assert row["result"]["schema"] == "repro-obs/1"
    assert row["digest"] == row["result"]["digest"]


def test_golden_cells_match_committed_digests():
    golden = json.load(open("tests/golden/golden.json"))
    (out_row,) = run_cells([CellSpec(kind="golden-output", name="consistency-2-3")], jobs=1)
    assert out_row["digest"] == golden["outputs"]["consistency-2-3"]
    (tr_row,) = run_cells([CellSpec(kind="golden-traced", name="micro-5-3-traced")], jobs=1)
    assert tr_row["result"] == golden["trace_digests"]["micro-5-3-traced"]


@pytest.mark.parametrize("jobs", [2, 4])
def test_mixed_kind_sweep_is_order_stable(jobs):
    specs = [
        CellSpec(kind="_test-echo", name="n%d" % i, params={"i": i, "digest": "d%d" % i})
        for i in range(8)
    ]
    rows = run_cells(specs, jobs=jobs)
    assert [r["digest"] for r in rows] == ["d%d" % i for i in range(8)]
