"""The pool contract: pickle-safe specs, ordered collection, failure
isolation (raising AND crashing cells), and honest accounting."""

import pickle

import pytest

from repro.parallel import (
    CellSpec,
    default_jobs,
    pool_accounting,
    run_cell_spec,
    run_cells,
)


def _echo_specs(n):
    return [
        CellSpec(kind="_test-echo", name="echo-%d" % i, params={"i": i, "digest": "d%d" % i})
        for i in range(n)
    ]


def test_cell_spec_round_trips_through_pickle():
    spec = CellSpec(
        kind="bench-workload",
        name="cluster-snfs-n16",
        params={"quick": False, "digests": True, "extra_ns": [1024]},
        seed=1989,
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.params == spec.params


def test_run_cell_spec_unknown_kind_is_error_row_not_raise():
    row = run_cell_spec(CellSpec(kind="no-such-kind", name="x"))
    assert row["error"] is not None
    assert "no-such-kind" in row["error"]
    assert row["result"] is None


def test_serial_and_pooled_rows_agree_in_order_and_content():
    specs = _echo_specs(6)
    serial = run_cells(specs, jobs=1)
    pooled = run_cells(specs, jobs=2)
    assert [r["name"] for r in serial] == [s.name for s in specs]
    assert [r["name"] for r in pooled] == [s.name for s in specs]
    for a, b in zip(serial, pooled):
        assert a["result"] == b["result"]
        assert a["digest"] == b["digest"]
        assert a["error"] is None and b["error"] is None


@pytest.mark.parametrize("jobs", [1, 2])
def test_raising_cell_is_isolated(jobs):
    specs = [
        CellSpec(kind="_test-echo", name="before"),
        CellSpec(kind="_test-raise", name="bad", params={"message": "boom"}),
        CellSpec(kind="_test-echo", name="after"),
    ]
    rows = run_cells(specs, jobs=jobs)
    assert [r["name"] for r in rows] == ["before", "bad", "after"]
    assert rows[0]["error"] is None and rows[2]["error"] is None
    assert "boom" in rows[1]["error"]


def test_crashing_worker_does_not_kill_the_sweep():
    specs = [
        CellSpec(kind="_test-echo", name="survivor-1", params={"i": 1}),
        CellSpec(kind="_test-crash", name="poison"),
        CellSpec(kind="_test-echo", name="survivor-2", params={"i": 2}),
    ]
    rows = run_cells(specs, jobs=2)
    assert [r["name"] for r in rows] == ["survivor-1", "poison", "survivor-2"]
    assert rows[0]["error"] is None
    assert rows[2]["error"] is None
    assert "crash" in rows[1]["error"]


def test_progress_callback_sees_every_cell_once():
    seen = []
    run_cells(_echo_specs(4), jobs=1, progress=lambda d, t, row: seen.append((d, t, row["name"])))
    assert [s[0] for s in seen] == [1, 2, 3, 4]
    assert all(s[1] == 4 for s in seen)


def test_default_jobs_is_positive():
    assert default_jobs() >= 1


def test_pool_accounting_shape():
    rows = run_cells(_echo_specs(3), jobs=1)
    rows[1]["error"] = "synthetic"
    block = pool_accounting(rows, total_wall_seconds=0.5, jobs=2)
    assert block["jobs"] == 2
    assert block["total_wall_seconds"] == 0.5
    assert len(block["cells"]) == 3
    assert block["cells"][1]["error"] == "synthetic"
    assert "error" not in block["cells"][0]
    assert block["speedup"] == round(block["serial_cell_seconds"] / 0.5, 3)
