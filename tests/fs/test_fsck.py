"""Tests for the fsck-style invariant checker: each corruption class."""

import pytest

from repro.fs import FileType, LocalFileSystem
from repro.fs.localfs import ROOT_INUM
from repro.storage import Disk


@pytest.fixture
def fs(runner):
    return LocalFileSystem(runner.sim, Disk(runner.sim), fsid="fsck")


def make_file(runner, fs, name="f", blocks=1):
    inum = runner.run(fs.create(fs.root_inum, name))
    for bno in range(blocks):
        runner.run(fs.write_block(inum, bno, b"x" * 100))
    return inum


def test_clean_tree_passes(runner, fs):
    d = runner.run(fs.mkdir(fs.root_inum, "d"))
    make_file(runner, fs, "a")
    inum = runner.run(fs.create(d, "b"))
    runner.run(fs.write_block(inum, 0, b"data"))
    runner.run(fs.link(inum, d, "b-link"))
    assert fs.check() == []


def test_detects_orphan_block(runner, fs):
    inum = make_file(runner, fs)
    fs._inodes[inum].blocks.clear()  # block data remains, unreferenced
    assert any("orphan" in p for p in fs.check())


def test_detects_missing_block_data(runner, fs):
    inum = make_file(runner, fs)
    addr = fs._inodes[inum].blocks[0]
    del fs._data[addr]
    assert any("missing data" in p for p in fs.check())


def test_detects_shared_block(runner, fs):
    a = make_file(runner, fs, "a")
    b = make_file(runner, fs, "b")
    fs._inodes[b].blocks[0] = fs._inodes[a].blocks[0]
    problems = fs.check()
    assert any("shared" in p for p in problems)


def test_detects_dangling_directory_entry(runner, fs):
    inum = make_file(runner, fs)
    del fs._inodes[inum]
    assert any("dangling" in p for p in fs.check())


def test_detects_unreachable_inode(runner, fs):
    inum = make_file(runner, fs)
    del fs._inodes[ROOT_INUM].entries["f"]
    assert any("unreachable" in p for p in fs.check())


def test_detects_nlink_mismatch(runner, fs):
    inum = make_file(runner, fs)
    fs._inodes[inum].nlink = 5
    assert any("nlink" in p for p in fs.check())


def test_detects_missing_root():
    from repro.sim import Simulator

    sim = Simulator()
    fs = LocalFileSystem(sim, Disk(sim))
    del fs._inodes[ROOT_INUM]
    assert fs.check() == ["no root inode"]


def test_check_runs_clean_after_heavy_churn(runner, fs):
    # build, link, rename, truncate, delete — then verify
    d = runner.run(fs.mkdir(fs.root_inum, "dir"))
    for i in range(10):
        inum = runner.run(fs.create(d, "f%d" % i))
        runner.run(fs.write_block(inum, 0, bytes([i]) * 50))
    runner.run(fs.rename(d, "f0", d, "renamed"))
    runner.run(fs.remove(d, "f1"))
    inum = runner.run(fs.lookup(d, "f2"))
    runner.run(fs.link(inum, fs.root_inum, "hard"))
    runner.run(fs.setattr(inum, size=10))
    assert fs.check() == []
