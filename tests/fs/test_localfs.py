"""Tests for the local Unix-like filesystem."""

import pytest

from repro.fs import (
    DirectoryNotEmpty,
    FileExists,
    FileType,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    NoSuchFile,
    NotADirectory,
    StaleHandle,
)
from repro.fs.localfs import LocalFileSystem, ROOT_INUM
from repro.storage import Disk, DiskConfig


@pytest.fixture
def fs(runner):
    disk = Disk(runner.sim, DiskConfig())
    return LocalFileSystem(runner.sim, disk, fsid="test0")


def test_root_exists(fs):
    assert fs.root_inum == ROOT_INUM
    attr = fs._attr(ROOT_INUM)
    assert attr.ftype is FileType.DIRECTORY


def test_create_and_lookup(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "hello.txt"))
    found = runner.run(fs.lookup(fs.root_inum, "hello.txt"))
    assert found == inum


def test_create_duplicate_rejected(runner, fs):
    runner.run(fs.create(fs.root_inum, "f"))
    with pytest.raises(FileExists):
        runner.run(fs.create(fs.root_inum, "f"))


def test_lookup_missing_raises(runner, fs):
    with pytest.raises(NoSuchFile):
        runner.run(fs.lookup(fs.root_inum, "ghost"))


def test_lookup_in_file_raises_enotdir(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    with pytest.raises(NotADirectory):
        runner.run(fs.lookup(inum, "x"))


def test_bad_names_rejected(runner, fs):
    for bad in ("", "a/b", ".", ".."):
        with pytest.raises(InvalidArgument):
            runner.run(fs.create(fs.root_inum, bad))


def test_mkdir_and_nested_files(runner, fs):
    d = runner.run(fs.mkdir(fs.root_inum, "src"))
    f = runner.run(fs.create(d, "main.c"))
    assert runner.run(fs.lookup(d, "main.c")) == f
    names = runner.run(fs.readdir(d))
    assert names == ["main.c"]


def test_mkdir_bumps_parent_nlink(runner, fs):
    before = fs._attr(fs.root_inum).nlink
    runner.run(fs.mkdir(fs.root_inum, "d"))
    assert fs._attr(fs.root_inum).nlink == before + 1


def test_write_and_read_block(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    runner.run(fs.write_block(inum, 0, b"x" * 4096))
    runner.run(fs.write_block(inum, 1, b"tail"))
    assert runner.run(fs.read_block(inum, 0)) == b"x" * 4096
    assert runner.run(fs.read_block(inum, 1)) == b"tail"
    assert fs._attr(inum).size == 4096 + 4


def test_read_hole_returns_empty_no_io(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    reads_before = fs.disk.stats.get("reads")
    assert runner.run(fs.read_block(inum, 7)) == b""
    assert fs.disk.stats.get("reads") == reads_before


def test_oversized_block_write_rejected(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    with pytest.raises(InvalidArgument):
        runner.run(fs.write_block(inum, 0, b"x" * (fs.block_size + 1)))


def test_write_block_to_directory_rejected(runner, fs):
    with pytest.raises(IsADirectory):
        runner.run(fs.write_block(fs.root_inum, 0, b"x"))


def test_remove_frees_blocks(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    runner.run(fs.write_block(inum, 0, b"data"))
    assert fs.blocks_in_use() == 1
    runner.run(fs.remove(fs.root_inum, "f"))
    assert fs.blocks_in_use() == 0
    with pytest.raises(NoSuchFile):
        runner.run(fs.lookup(fs.root_inum, "f"))


def test_remove_directory_with_remove_rejected(runner, fs):
    runner.run(fs.mkdir(fs.root_inum, "d"))
    with pytest.raises(IsADirectory):
        runner.run(fs.remove(fs.root_inum, "d"))


def test_rmdir_requires_empty(runner, fs):
    d = runner.run(fs.mkdir(fs.root_inum, "d"))
    runner.run(fs.create(d, "f"))
    with pytest.raises(DirectoryNotEmpty):
        runner.run(fs.rmdir(fs.root_inum, "d"))
    runner.run(fs.remove(d, "f"))
    runner.run(fs.rmdir(fs.root_inum, "d"))
    with pytest.raises(NoSuchFile):
        runner.run(fs.lookup(fs.root_inum, "d"))


def test_rename_within_directory(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "old"))
    runner.run(fs.rename(fs.root_inum, "old", fs.root_inum, "new"))
    assert runner.run(fs.lookup(fs.root_inum, "new")) == inum
    with pytest.raises(NoSuchFile):
        runner.run(fs.lookup(fs.root_inum, "old"))


def test_rename_replaces_target(runner, fs):
    a = runner.run(fs.create(fs.root_inum, "a"))
    b = runner.run(fs.create(fs.root_inum, "b"))
    runner.run(fs.write_block(b, 0, b"victim"))
    runner.run(fs.rename(fs.root_inum, "a", fs.root_inum, "b"))
    assert runner.run(fs.lookup(fs.root_inum, "b")) == a
    assert fs.blocks_in_use() == 0  # victim's block freed
    assert b not in list(fs.iter_inums())


def test_rename_across_directories_fixes_nlink(runner, fs):
    d1 = runner.run(fs.mkdir(fs.root_inum, "d1"))
    d2 = runner.run(fs.mkdir(fs.root_inum, "d2"))
    sub = runner.run(fs.mkdir(d1, "sub"))
    nlink_d1 = fs._attr(d1).nlink
    nlink_d2 = fs._attr(d2).nlink
    runner.run(fs.rename(d1, "sub", d2, "sub"))
    assert fs._attr(d1).nlink == nlink_d1 - 1
    assert fs._attr(d2).nlink == nlink_d2 + 1
    assert runner.run(fs.lookup(d2, "sub")) == sub


def test_hard_link_shares_inode(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "a"))
    runner.run(fs.link(inum, fs.root_inum, "b"))
    assert fs._attr(inum).nlink == 2
    runner.run(fs.remove(fs.root_inum, "a"))
    # still reachable via b
    assert runner.run(fs.lookup(fs.root_inum, "b")) == inum
    runner.run(fs.remove(fs.root_inum, "b"))
    assert inum not in list(fs.iter_inums())


def test_truncate_frees_tail_blocks(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    for bno in range(3):
        runner.run(fs.write_block(inum, bno, b"x" * fs.block_size))
    assert fs.blocks_in_use() == 3
    runner.run(fs.setattr(inum, size=fs.block_size + 10))
    assert fs.blocks_in_use() == 2
    assert fs._attr(inum).size == fs.block_size + 10
    data = runner.run(fs.read_block(inum, 1))
    assert data == b"x" * 10


def test_truncate_to_zero(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    runner.run(fs.write_block(inum, 0, b"data"))
    runner.run(fs.setattr(inum, size=0))
    assert fs._attr(inum).size == 0
    assert fs.blocks_in_use() == 0


def test_handle_staleness_after_delete(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    fh = fs.handle(inum)
    assert fs.resolve(fh) == inum
    runner.run(fs.remove(fs.root_inum, "f"))
    with pytest.raises(StaleHandle):
        fs.resolve(fh)


def test_handle_generation_protects_recycled_inum(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    fh = fs.handle(inum)
    runner.run(fs.remove(fs.root_inum, "f"))
    # force inum reuse by injecting an inode with the same number
    inum2 = runner.run(fs.create(fs.root_inum, "g"))
    fh2 = fs.handle(inum2)
    assert fs.resolve(fh2) == inum2
    with pytest.raises(StaleHandle):
        fs.resolve(fh)


def test_note_logical_write_updates_size_without_io(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    writes_before = fs.disk.stats.get("writes")
    fs.note_logical_write(inum, 9999)
    assert fs._attr(inum).size == 9999
    assert fs.disk.stats.get("writes") == writes_before


def test_metadata_ops_write_synchronously(runner, fs):
    writes_before = fs.disk.stats.get("writes")
    runner.run(fs.create(fs.root_inum, "f"))
    assert fs.disk.stats.get("writes") > writes_before


def test_capacity_enforced(runner):
    disk = Disk(runner.sim, DiskConfig())
    small = LocalFileSystem(runner.sim, disk, capacity_blocks=2)
    inum = runner.run(small.create(small.root_inum, "f"))
    runner.run(small.write_block(inum, 0, b"x"))
    runner.run(small.write_block(inum, 1, b"x"))
    with pytest.raises(NoSpace):
        runner.run(small.write_block(inum, 2, b"x"))


def test_check_clean_fs_has_no_problems(runner, fs):
    d = runner.run(fs.mkdir(fs.root_inum, "d"))
    f = runner.run(fs.create(d, "f"))
    runner.run(fs.write_block(f, 0, b"x"))
    assert fs.check() == []


def test_check_detects_corruption(runner, fs):
    f = runner.run(fs.create(fs.root_inum, "f"))
    runner.run(fs.write_block(f, 0, b"x"))
    # corrupt: orphan the data block
    fs._inodes[f].blocks.clear()
    problems = fs.check()
    assert any("orphan" in p for p in problems)


def test_getattr_after_operations(runner, fs):
    inum = runner.run(fs.create(fs.root_inum, "f"))
    attr = runner.run(fs.getattr(inum))
    assert attr.ftype is FileType.REGULAR
    assert attr.size == 0
    assert attr.nlink == 1
