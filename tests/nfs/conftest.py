"""NFS test fixtures: one server, one or two client hosts."""

import pytest

from repro.host import Host, HostConfig
from repro.net import Network
from repro.nfs import NfsClient, NfsClientConfig, NfsServer


class NfsWorld:
    """A server exporting /export plus client hosts mounting it at /data."""

    def __init__(self, runner, n_clients=1, client_config=None):
        self.runner = runner
        sim = runner.sim
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = NfsServer(self.server_host, self.export)
        self.clients = []
        self.mounts = []
        for i in range(n_clients):
            host = Host(sim, self.network, "client%d" % i, HostConfig.titan_client())
            client = NfsClient(
                "nfs%d" % i, host, "server", config=client_config or NfsClientConfig()
            )
            runner.run(client.attach())
            host.kernel.mount("/data", client)
            self.clients.append(host)
            self.mounts.append(client)

    @property
    def client(self):
        return self.clients[0]

    @property
    def mount(self):
        return self.mounts[0]

    def client_rpc_count(self, proc, i=0):
        return self.clients[i].rpc.client_stats.get(proc)

    def server_disk(self):
        return self.export.lfs.disk


@pytest.fixture
def world(runner):
    return NfsWorld(runner)


@pytest.fixture
def world2(runner):
    return NfsWorld(runner, n_clients=2)
