"""Tests for the directory-name-lookup cache extension (§7)."""

import pytest

from repro.fs import NoSuchFile, OpenMode
from repro.nfs import PROC, NfsClientConfig
from tests.nfs.conftest import NfsWorld


@pytest.fixture
def world(runner):
    return NfsWorld(
        runner, client_config=NfsClientConfig(name_cache_ttl=30.0)
    )


def test_repeated_lookups_hit_the_cache(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        before = world.client_rpc_count(PROC.LOOKUP)
        for _ in range(5):
            yield from k.stat("/data/f")
        return world.client_rpc_count(PROC.LOOKUP) - before

    assert runner.run(scenario()) == 0  # all five resolved locally


def test_cache_expires_after_ttl(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        yield from k.stat("/data/f")
        before = world.client_rpc_count(PROC.LOOKUP)
        yield runner.sim.timeout(60.0)  # past the 30 s TTL
        yield from k.stat("/data/f")
        return world.client_rpc_count(PROC.LOOKUP) - before

    assert runner.run(scenario()) == 1


def test_unlink_purges_name(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        yield from k.stat("/data/f")
        yield from k.unlink("/data/f")
        with pytest.raises(NoSuchFile):
            yield from k.stat("/data/f")

    runner.run(scenario())


def test_rename_purges_both_names(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/a", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        yield from k.stat("/data/a")
        yield from k.rename("/data/a", "/data/b")
        with pytest.raises(NoSuchFile):
            yield from k.stat("/data/a")
        attr = yield from k.stat("/data/b")
        return attr

    runner.run(scenario())


def test_cache_disabled_by_default(runner):
    world = NfsWorld(runner)  # default config: ttl 0
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        before = world.client_rpc_count(PROC.LOOKUP)
        yield from k.stat("/data/f")
        yield from k.stat("/data/f")
        return world.client_rpc_count(PROC.LOOKUP) - before

    assert runner.run(scenario()) == 2  # one RPC per stat, no caching


def test_name_cache_reduces_andrew_lookups():
    from repro.experiments import run_andrew
    from repro.workloads import make_tree

    tree = make_tree(n_dirs=1, files_per_dir=6)
    base = run_andrew("nfs", remote_tmp=True, tree=tree)
    cached = run_andrew(
        "nfs", remote_tmp=True, tree=tree,
        client_config=NfsClientConfig(name_cache_ttl=30.0),
    )
    assert cached.rpc_rows["lookup"] < base.rpc_rows["lookup"] * 0.5
    assert cached.result.total <= base.result.total
