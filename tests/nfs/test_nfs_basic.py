"""End-to-end NFS tests: file operations through the kernel syscall layer."""

import pytest

from repro.fs import NoSuchFile, OpenMode
from repro.nfs import PROC


def test_create_write_read_roundtrip(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"hello over the wire")
        yield from k.close(fd)
        fd = yield from k.open("/data/f", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b"hello over the wire"


def test_data_lands_on_server_disk_after_close(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x" * 8192)  # two full blocks
        yield from k.close(fd)

    runner.run(scenario())
    # write-through: both data blocks are on the server's disk
    assert world.server_disk().stats.get("write_blocks") >= 2
    # and the server's local fs has the content
    lfs = world.export.lfs
    inum = runner.run(lfs.lookup(lfs.root_inum, "f"))
    assert lfs._attr(inum).size == 8192


def test_multi_component_lookup_rpcs(runner, world):
    k = world.client.kernel

    def scenario():
        yield from k.mkdir("/data/a")
        yield from k.mkdir("/data/a/b")
        fd = yield from k.open("/data/a/b/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        before = world.client_rpc_count(PROC.LOOKUP)
        attr = yield from k.stat("/data/a/b/f")
        after = world.client_rpc_count(PROC.LOOKUP)
        return after - before

    # one lookup RPC per path component: a, b, f
    assert runner.run(scenario()) == 3


def test_file_not_found_propagates(runner, world):
    k = world.client.kernel
    with pytest.raises(NoSuchFile):
        runner.run(k.stat("/data/ghost"))


def test_mkdir_readdir_rmdir(runner, world):
    k = world.client.kernel

    def scenario():
        yield from k.mkdir("/data/d")
        fd = yield from k.open("/data/d/one", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        names = yield from k.readdir("/data/d")
        yield from k.unlink("/data/d/one")
        yield from k.rmdir("/data/d")
        root_names = yield from k.readdir("/data")
        return names, root_names

    names, root_names = runner.run(scenario())
    assert names == ["one"]
    assert "d" not in root_names


def test_rename_over_nfs(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/old", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"content")
        yield from k.close(fd)
        yield from k.rename("/data/old", "/data/new")
        fd = yield from k.open("/data/new", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b"content"


def test_truncate_over_nfs(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"0123456789")
        yield from k.close(fd)
        yield from k.truncate("/data/f", 4)
        attr = yield from k.stat("/data/f")
        fd = yield from k.open("/data/f", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return attr.size, data

    size, data = runner.run(scenario())
    assert size == 4
    assert data == b"0123"


def test_partial_block_write_is_delayed(runner, world):
    """The reference port delays writes that don't fill a block."""
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"tiny")
        # not closed yet: no write RPC should have gone out
        yield runner.sim.timeout(0.5)
        mid = world.client_rpc_count(PROC.WRITE)
        yield from k.close(fd)
        return mid

    mid = runner.run(scenario())
    assert mid == 0
    assert world.client_rpc_count(PROC.WRITE) == 1  # flushed at close


def test_full_block_write_through_is_async(runner, world):
    """The app is not blocked by the server write; close waits for it."""
    k = world.client.kernel
    times = {}

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        t0 = runner.sim.now
        yield from k.write(fd, b"x" * 4096)
        times["write_returned"] = runner.sim.now - t0
        yield from k.close(fd)
        times["closed"] = runner.sim.now - t0

    runner.run(scenario())
    # the write returned long before the disk write-through completed
    assert times["write_returned"] < 0.005
    assert times["closed"] > 0.02  # had to wait for the server disk


def test_close_drains_all_pending_writes(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"y" * (4096 * 6))
        yield from k.close(fd)

    runner.run(scenario())
    assert world.client_rpc_count(PROC.WRITE) == 6
    assert world.server_disk().stats.get("write_blocks") >= 6


def test_cached_read_needs_no_second_rpc(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"z" * 4096)
        yield from k.close(fd)
        fd = yield from k.open("/data/f", OpenMode.READ)
        yield from k.read(fd, 4096)
        first = world.client_rpc_count(PROC.READ)
        k.lseek(fd, 0)
        yield from k.read(fd, 4096)
        second = world.client_rpc_count(PROC.READ)
        yield from k.close(fd)
        return first, second

    first, second = runner.run(scenario())
    assert first >= 1
    assert second == first  # the repeat read hit the client cache


def test_invalidate_on_close_bug_forces_rereads(runner, world):
    """Write, close, reopen, read: the bug makes the read go to the
    server even though the client just wrote the data (§5.2)."""
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"w" * 4096)
        yield from k.close(fd)
        before = world.client_rpc_count(PROC.READ)
        fd = yield from k.open("/data/f", OpenMode.READ)
        yield from k.read(fd, 4096)
        yield from k.close(fd)
        return world.client_rpc_count(PROC.READ) - before

    assert runner.run(scenario()) >= 1


def test_fixed_client_keeps_cache_across_close(runner):
    """With the bug fixed (modern client), the reread is free."""
    from repro.nfs import NfsClientConfig
    from tests.nfs.conftest import NfsWorld

    world = NfsWorld(
        runner, client_config=NfsClientConfig(invalidate_on_close=False)
    )
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"w" * 4096)
        yield from k.close(fd)
        before = world.client_rpc_count(PROC.READ)
        fd = yield from k.open("/data/f", OpenMode.READ)
        data = yield from k.read(fd, 4096)
        yield from k.close(fd)
        return world.client_rpc_count(PROC.READ) - before, data

    extra_reads, data = runner.run(scenario())
    assert extra_reads == 0
    assert data == b"w" * 4096


def test_unlink_purges_and_removes(runner, world):
    k = world.client.kernel

    def scenario():
        fd = yield from k.open("/data/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x" * 4096)
        yield from k.close(fd)
        yield from k.unlink("/data/f")
        with pytest.raises(NoSuchFile):
            yield from k.stat("/data/f")

    runner.run(scenario())
    assert world.client_rpc_count(PROC.REMOVE) == 1
