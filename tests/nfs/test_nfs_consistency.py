"""NFS consistency semantics with two clients (§2.1, §2.3).

NFS provides only probabilistic consistency: a reader can see stale
data for up to the attribute-probe interval while another client
writes.  Sequential write-sharing (writer closes before reader opens)
is consistent.  These tests pin down both behaviours — the weakness
SNFS exists to fix, and the case NFS does handle.
"""

import pytest

from repro.fs import OpenMode
from repro.nfs import PROC


def write_file(k, path, data):
    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def read_file(k, path, n=1 << 20):
    fd = yield from k.open(path, OpenMode.READ)
    data = yield from k.read(fd, n)
    yield from k.close(fd)
    return data


def test_sequential_write_sharing_is_consistent(runner, world2):
    """Writer closes before reader opens: reader sees the new data."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"version-1")
        data1 = yield from read_file(k1, "/data/f")
        yield from write_file(k0, "/data/f", b"version-2")
        data2 = yield from read_file(k1, "/data/f")
        return data1, data2

    data1, data2 = runner.run(scenario())
    assert data1 == b"version-1"
    assert data2 == b"version-2"


def test_concurrent_reader_sees_stale_data_within_probe_window(runner, world2):
    """Reader holds the file open with fresh attrs; writer updates it;
    reader's next read within the probe interval returns stale bytes."""
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel
    observations = []

    def reader():
        fd = yield from k1.open("/data/f", OpenMode.READ)
        data = yield from k1.read(fd, 4096)
        observations.append(("initial", bytes(data)))
        # writer updates the file at t~1s; we re-read immediately after
        yield runner.sim.timeout(2.0)
        k1.lseek(fd, 0)
        data = yield from k1.read(fd, 4096)
        observations.append(("stale-window", bytes(data)))
        # after the probe interval has certainly passed, read again
        yield runner.sim.timeout(200.0)
        k1.lseek(fd, 0)
        data = yield from k1.read(fd, 4096)
        observations.append(("after-probe", bytes(data)))
        yield from k1.close(fd)

    def writer():
        yield runner.sim.timeout(1.0)
        fd = yield from k0.open("/data/f", OpenMode.WRITE)
        yield from k0.write(fd, b"NEW!" * 1024)
        yield from k0.close(fd)

    def setup():
        yield from write_file(k0, "/data/f", b"old." * 1024)

    runner.run(setup())
    runner.run_all(reader(), writer())
    obs = dict(observations)
    assert obs["initial"] == b"old." * 1024
    # within the probe window NFS serves stale cached data: incorrect!
    assert obs["stale-window"] == b"old." * 1024
    # once the attribute probe fires, the cache is invalidated
    assert obs["after-probe"] == b"NEW!" * 1024


def test_attr_probe_interval_adapts(runner, world):
    """Probes back off (3 s -> 150 s cap) while a file stays unchanged."""
    k = world.client.kernel

    def scenario():
        yield from write_file(k, "/data/f", b"stable")
        fd = yield from k.open("/data/f", OpenMode.READ)
        getattrs = []
        for _ in range(60):
            yield runner.sim.timeout(10.0)
            before = world.client_rpc_count(PROC.GETATTR)
            yield from k.read(fd, 10)
            k.lseek(fd, 0)
            getattrs.append(world.client_rpc_count(PROC.GETATTR) - before)
        yield from k.close(fd)
        return getattrs

    getattrs = runner.run(scenario())
    # early reads probe often; later reads (interval grown) probe rarely
    early = sum(getattrs[:10])
    late = sum(getattrs[-10:])
    assert early > late
    assert late <= 2


def test_probe_detects_remote_change_and_invalidates(runner, world2):
    k0 = world2.clients[0].kernel
    k1 = world2.clients[1].kernel

    def scenario():
        yield from write_file(k0, "/data/f", b"A" * 4096)
        data1 = yield from read_file(k1, "/data/f")
        # remote update
        yield from write_file(k0, "/data/f", b"B" * 4096)
        # wait out the max probe interval, then read again
        yield runner.sim.timeout(200.0)
        data2 = yield from read_file(k1, "/data/f")
        return data1, data2

    data1, data2 = runner.run(scenario())
    assert data1 == b"A" * 4096
    assert data2 == b"B" * 4096


def test_no_probes_for_write_shared_file_until_interval(runner, world2):
    """Consistency checks are made with the server only — clients never
    talk to each other in NFS (there is no callback machinery)."""
    k0 = world2.clients[0].kernel
    server_stats = world2.server_host.rpc.server_stats

    def scenario():
        yield from write_file(k0, "/data/f", b"data")

    runner.run(scenario())
    # no server->client traffic exists in NFS: the clients' RPC
    # endpoints never served anything
    assert world2.clients[0].rpc.server_stats.total() == 0
    assert world2.clients[1].rpc.server_stats.total() == 0
    assert server_stats.total() > 0
