"""Direct RPC-level tests of the stateless NFS server."""

import pytest

from repro.fs import (
    DirectoryNotEmpty,
    FileExists,
    IsADirectory,
    NoSuchFile,
    StaleHandle,
)
from repro.host import Host, HostConfig
from repro.net import Network, RpcEndpoint
from repro.nfs import PROC, NfsServer


class RawNfs:
    def __init__(self, runner):
        sim = runner.sim
        self.runner = runner
        self.network = Network(sim)
        self.server_host = Host(sim, self.network, "server", HostConfig.titan_server())
        self.export = self.server_host.add_local_fs("/export", fsid="exportfs")
        self.server = NfsServer(self.server_host, self.export)
        self.client = RpcEndpoint(sim, self.network, "raw")

    def call(self, proc, *args):
        return self.runner.run(self.client.call("server", proc, *args))

    def root(self):
        fh, _ = self.call(PROC.MNT)
        return fh


@pytest.fixture
def world(runner):
    return RawNfs(runner)


def test_mnt_returns_root_directory(world):
    fh, attr = world.call(PROC.MNT)
    assert attr.ftype.name == "DIRECTORY"
    assert fh.fsid == "exportfs"


def test_create_is_idempotent(world):
    root = world.root()
    fh1, _ = world.call(PROC.CREATE, root, "f", 0o644)
    fh2, _ = world.call(PROC.CREATE, root, "f", 0o644)
    assert fh1 == fh2  # retransmitted create: same file, no error


def test_write_is_durable_before_reply(world):
    root = world.root()
    fh, _ = world.call(PROC.CREATE, root, "f", 0o644)
    disk_writes_before = world.export.lfs.disk.stats.get("writes")
    attr = world.call(PROC.WRITE, fh, 0, b"d" * 4096)
    assert attr.size == 4096
    # the data block hit the disk before the reply was produced
    assert world.export.lfs.disk.stats.get("writes") > disk_writes_before


def test_read_returns_data_and_attrs(world):
    root = world.root()
    fh, _ = world.call(PROC.CREATE, root, "f", 0o644)
    world.call(PROC.WRITE, fh, 0, b"hello")
    data, attr = world.call(PROC.READ, fh, 0, 100)
    assert data == b"hello"
    assert attr.size == 5


def test_read_beyond_eof_empty(world):
    root = world.root()
    fh, _ = world.call(PROC.CREATE, root, "f", 0o644)
    data, _attr = world.call(PROC.READ, fh, 100, 10)
    assert data == b""


def test_stale_handle_rejected_everywhere(world):
    root = world.root()
    fh, _ = world.call(PROC.CREATE, root, "f", 0o644)
    world.call(PROC.REMOVE, root, "f")
    for proc, args in [
        (PROC.GETATTR, (fh,)),
        (PROC.READ, (fh, 0, 10)),
        (PROC.WRITE, (fh, 0, b"x")),
        (PROC.SETATTR, (fh, 0, None)),
    ]:
        with pytest.raises(StaleHandle):
            world.call(proc, *args)


def test_lookup_errors(world):
    root = world.root()
    with pytest.raises(NoSuchFile):
        world.call(PROC.LOOKUP, root, "ghost")
    fh, _ = world.call(PROC.CREATE, root, "plain", 0o644)
    with pytest.raises(Exception):
        world.call(PROC.LOOKUP, fh, "child")  # lookup inside a file


def test_remove_directory_with_remove_fails(world):
    root = world.root()
    world.call(PROC.MKDIR, root, "d", 0o755)
    with pytest.raises(IsADirectory):
        world.call(PROC.REMOVE, root, "d")


def test_rmdir_nonempty_fails(world):
    root = world.root()
    dfh, _ = world.call(PROC.MKDIR, root, "d", 0o755)
    world.call(PROC.CREATE, dfh, "child", 0o644)
    with pytest.raises(DirectoryNotEmpty):
        world.call(PROC.RMDIR, root, "d")


def test_setattr_truncates(world):
    root = world.root()
    fh, _ = world.call(PROC.CREATE, root, "f", 0o644)
    world.call(PROC.WRITE, fh, 0, b"0123456789")
    attr = world.call(PROC.SETATTR, fh, 4, None)
    assert attr.size == 4
    data, _ = world.call(PROC.READ, fh, 0, 100)
    assert data == b"0123"


def test_readdir_lists_names(world):
    root = world.root()
    for name in ("b", "a", "c"):
        world.call(PROC.CREATE, root, name, 0o644)
    names = world.call(PROC.READDIR, root)
    assert names == ["a", "b", "c"]


def test_rename_replaces(world):
    root = world.root()
    fh_a, _ = world.call(PROC.CREATE, root, "a", 0o644)
    world.call(PROC.WRITE, fh_a, 0, b"A")
    world.call(PROC.CREATE, root, "b", 0o644)
    world.call(PROC.RENAME, root, "a", root, "b")
    fh, attr = world.call(PROC.LOOKUP, root, "b")
    assert fh == fh_a
    assert attr.size == 1
    with pytest.raises(NoSuchFile):
        world.call(PROC.LOOKUP, root, "a")
