"""Quantile-digest behavior: accuracy, merging, canonical state."""

import json

import pytest

from repro.obs import LATENCY_BREAKS, QuantileDigest


def test_empty_digest():
    d = QuantileDigest()
    assert d.count == 0
    assert d.quantile(0.5) == 0.0
    assert d.mean() == 0.0


def test_single_value_quantiles_are_exact():
    d = QuantileDigest()
    d.add(0.004)
    assert d.quantile(0.0) == pytest.approx(0.004)
    assert d.quantile(1.0) == pytest.approx(0.004)
    # with one sample the interpolated median lands inside its cell
    assert 0.003 <= d.quantile(0.5) <= 0.005


def test_quantile_accuracy_within_cell_width():
    # uniform stream: every estimate must land within the bracketing
    # ladder cell (the documented error bound)
    d = QuantileDigest()
    values = [i / 1000.0 for i in range(1, 1001)]  # 1 ms .. 1 s
    for v in values:
        d.add(v)
    for q in (0.1, 0.5, 0.9, 0.95, 0.99):
        exact = values[int(q * len(values)) - 1]
        est = d.quantile(q)
        # cell width on the 1-1.5-2-3-5-7 ladder is < 50% relative
        assert abs(est - exact) / exact < 0.5


def test_monotone_quantiles():
    d = QuantileDigest()
    for i in range(500):
        d.add(0.0001 * (1 + i % 97))
    qs = [d.quantile(q / 20.0) for q in range(21)]
    assert qs == sorted(qs)


def test_mean_and_extrema_are_exact():
    d = QuantileDigest()
    for v in (0.001, 0.002, 0.009):
        d.add(v)
    assert d.mean() == pytest.approx(0.004)
    assert d.vmin == 0.001
    assert d.vmax == 0.009


def test_merge_equals_combined_stream():
    a, b, c = QuantileDigest(), QuantileDigest(), QuantileDigest()
    for i in range(100):
        v = 0.0003 * (1 + i % 13)
        a.add(v) if i % 2 else b.add(v)
        c.add(v)
    a.merge(b)
    assert a.state() == c.state()
    assert a.state_digest() == c.state_digest()


def test_merge_rejects_different_breakpoints():
    a = QuantileDigest()
    b = QuantileDigest(breaks=(0.1, 1.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_state_roundtrip():
    d = QuantileDigest()
    for i in range(50):
        d.add(0.002 * (1 + i))
    restored = QuantileDigest.from_state(json.loads(json.dumps(d.state())))
    assert restored.state() == d.state()
    assert restored.state_digest() == d.state_digest()
    assert restored.quantile(0.95) == d.quantile(0.95)


def test_state_digest_is_deterministic_and_sensitive():
    a, b = QuantileDigest(), QuantileDigest()
    for v in (0.001, 0.04, 2.5):
        a.add(v)
        b.add(v)
    assert a.state_digest() == b.state_digest()
    b.add(0.001)
    assert a.state_digest() != b.state_digest()


def test_ladder_shape():
    # 6 steps over 8 decades, strictly increasing, spanning 1e-5..1e2
    assert len(LATENCY_BREAKS) == 48
    assert list(LATENCY_BREAKS) == sorted(LATENCY_BREAKS)
    assert LATENCY_BREAKS[0] == pytest.approx(1e-5)
    assert LATENCY_BREAKS[-1] == pytest.approx(700.0)  # 7 * 10^2
