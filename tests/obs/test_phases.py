"""Phase attribution: sums, queue-wait accounting, determinism."""

import json

import pytest

from repro.experiments.traced import run_traced_andrew
from repro.obs import PHASES, obs_document
from repro.sim import Resource, Simulator


@pytest.fixture(scope="module")
def andrew_obs():
    run = run_traced_andrew("nfs", seed=1989)
    return run


def test_phase_sums_match_end_to_end(andrew_obs):
    """Acceptance criterion: per-op phase sums match traced end-to-end
    latency within 1% (they are an identity, so much tighter)."""
    obs = andrew_obs.sim.obs
    assert obs is not None and obs.ops
    for name, op in obs.ops.items():
        total = sum(op["phases"][p] for p in PHASES)
        assert total == pytest.approx(op["e2e_s"], rel=0.01), name
        # and far tighter than 1%: the residual construction is exact
        assert total == pytest.approx(op["e2e_s"], rel=1e-9), name


def test_op_counts_match_rpc_traffic(andrew_obs):
    obs = andrew_obs.sim.obs
    total_ops = sum(op["count"] for op in obs.ops.values())
    # every client-side rpc.call that succeeded is one recorded op
    assert total_ops > 100
    assert all(name.startswith("nfs.") for name in obs.ops)


def test_server_phases_present(andrew_obs):
    obs = andrew_obs.sim.obs
    writes = obs.ops["nfs.write"]
    # NFS writes go to stable storage before replying: disk dominates
    assert writes["phases"]["disk"] > 0.5 * writes["e2e_s"]
    # lookups never touch the disk (in-memory tree)
    lookups = obs.ops["nfs.lookup"]
    assert lookups["phases"]["disk"] == pytest.approx(0.0, abs=1e-12)
    assert lookups["phases"]["server_cpu"] > 0


def test_same_seed_runs_are_byte_identical():
    """Acceptance criterion: two same-seed runs produce byte-identical
    obs documents (and therefore byte-identical quantile digests)."""
    docs = []
    for _ in range(2):
        run = run_traced_andrew("nfs", seed=1989)
        doc = obs_document(run.sim.obs, meta={"seed": 1989})
        docs.append(json.dumps(doc, sort_keys=True))
    assert docs[0] == docs[1]


def test_obs_does_not_change_trace_digest():
    """Enabling obs must not perturb the schedule: the golden trace
    digest of an obs-on run equals the obs-off digest (the tracer was
    already armed in both; obs adds no events or processes)."""
    from repro.trace import trace_digest

    run = run_traced_andrew("snfs", seed=1989)
    assert run.sim.obs is not None  # traced runs arm obs
    digest_with = trace_digest(run.tracer)
    # golden suite pins this digest from pre-obs sessions; cross-check
    # against the committed goldens indirectly via a re-run
    run2 = run_traced_andrew("snfs", seed=1989)
    assert trace_digest(run2.tracer) == digest_with


# -- queue-wait accounting at the Resource level ------------------------------


def _hold(res, sim, seconds):
    yield res.acquire()
    try:
        yield sim.timeout(seconds)
    finally:
        res.release()


def test_queue_wait_lands_in_waiters_frame():
    """The grant runs in the releasing process's context; the wait must
    still be charged to the *waiter's* open frame."""
    sim = Simulator()
    obs = sim.enable_obs()
    res = Resource(sim, capacity=1, name="drive")
    res.obs_kind = "disk"

    recorded = {}

    def holder():
        yield from _hold(res, sim, 3.0)

    def waiter():
        frame = obs.frame_begin("client")
        yield from _hold(res, sim, 1.0)
        obs.frame_end(frame)
        recorded["acc"] = dict(frame.acc)

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert recorded["acc"]["disk.queue"] == pytest.approx(3.0)
    assert obs.waits["disk"]["waits"] == 1
    assert obs.waits["disk"]["wait_s"] == pytest.approx(3.0)


def test_unmarked_resource_is_invisible():
    sim = Simulator()
    obs = sim.enable_obs()
    res = Resource(sim, capacity=1, name="lock")  # obs_kind stays None
    sim.spawn(_hold(res, sim, 2.0))
    sim.spawn(_hold(res, sim, 1.0))
    sim.run()
    assert obs.waits == {}


def test_immediate_grant_counts_no_wait():
    sim = Simulator()
    obs = sim.enable_obs()
    res = Resource(sim, capacity=2, name="cpu")
    res.obs_kind = "cpu"
    sim.spawn(_hold(res, sim, 1.0))
    sim.spawn(_hold(res, sim, 1.0))
    sim.run()
    assert obs.waits == {}  # both grants were immediate
