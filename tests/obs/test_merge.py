"""Merging per-cell repro-obs/1 documents into one combined report.

A parallel sweep writes one obs document per cell; ``python -m repro
report A.json B.json`` merges them.  Counts and phase seconds must add
exactly, quantiles must merge through the fixed-breakpoint digests
(not be re-estimated from summaries), and the merged document must
validate and digest deterministically.
"""

import json

import pytest

from repro.obs import merge_obs_documents, validate_obs_document

from .test_report import _run_doc


@pytest.fixture(scope="module")
def docs():
    return _run_doc(seed=3), _run_doc(seed=4)


def test_merge_of_single_document_is_a_validating_copy(docs):
    a, _ = docs
    merged = merge_obs_documents([a])
    assert merged == json.loads(json.dumps(a))
    assert merged is not a


def test_merged_document_validates_and_sums_counts(docs):
    a, b = docs
    merged = merge_obs_documents([a, b])
    assert validate_obs_document(merged) == []
    for op, entry in merged["ops"].items():
        expect = a["ops"].get(op, {}).get("count", 0) + b["ops"].get(op, {}).get("count", 0)
        assert entry["count"] == expect
        phase_sum = sum(entry["phases"].values())
        assert entry["e2e_s"] == pytest.approx(phase_sum, abs=1e-6) or entry["e2e_s"] >= 0


def test_merged_quantiles_come_from_digest_merge(docs):
    a, b = docs
    merged = merge_obs_documents([a, b])
    for op, entry in merged["ops"].items():
        qa = a["ops"].get(op, {}).get("quantile_state")
        qb = b["ops"].get(op, {}).get("quantile_state")
        if qa and qb:
            # merged counts are the element-wise sums of the states
            assert sum(entry["quantile_state"]["counts"]) == sum(
                qa["counts"]
            ) + sum(qb["counts"])


def test_merge_is_deterministic_and_order_sensitive_only_in_meta(docs):
    a, b = docs
    m1 = merge_obs_documents([a, b])
    m2 = merge_obs_documents([a, b])
    assert m1 == m2
    assert m1["digest"] == m2["digest"]


def test_merge_records_member_cells_and_unanimous_meta(docs):
    a, b = docs
    merged = merge_obs_documents([a, b])
    assert merged["meta"]["merged_cells"] == ["ping", "ping"]
    # seeds differ between the two docs, so no unanimous seed is claimed
    assert "seed" not in merged["meta"]
    same = merge_obs_documents([a, _run_doc(seed=3)])
    assert same["meta"].get("seed") == 3


def test_merge_rejects_empty_and_foreign_documents(docs):
    a, _ = docs
    with pytest.raises(ValueError):
        merge_obs_documents([])
    alien = json.loads(json.dumps(a))
    alien["schema"] = "other/1"
    with pytest.raises(ValueError):
        merge_obs_documents([a, alien])
