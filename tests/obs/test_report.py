"""repro-obs/1 documents: build, validate, render, diff."""

import copy
import json

import pytest

from repro.host import Host, HostConfig
from repro.net import Network, NetworkConfig
from repro.obs import (
    OBS_SCHEMA,
    PHASES,
    diff_reports,
    obs_document,
    render_report,
    validate_obs_document,
)


@pytest.fixture(scope="module")
def doc():
    """One obs document from a small deterministic ping run."""
    return _run_doc()


def _run_doc(seed=3):
    from tests.conftest import SimRunner

    runner = SimRunner()
    sim = runner.sim
    obs = sim.enable_obs()
    net = Network(sim, NetworkConfig(seed=seed))
    a = Host(sim, net, "a", HostConfig.titan_client())
    b = Host(sim, net, "b", HostConfig.titan_client())

    def pong(src):
        yield from b.cpu.consume(0.002)
        return "pong"

    b.rpc.register("ping", pong)

    def caller():
        for _ in range(20):
            yield from a.rpc.call("b", "ping")

    runner.run(caller(), limit=1e6)
    obs.tag_file("0:7", read_bytes=8192)
    obs.tag_file("0:7", write_bytes=4096)
    return obs_document(obs, meta={"scenario": "ping", "seed": seed})


def test_document_validates_clean(doc):
    assert doc["schema"] == OBS_SCHEMA
    assert validate_obs_document(doc) == []


def test_document_survives_json_roundtrip(doc):
    restored = json.loads(json.dumps(doc))
    assert validate_obs_document(restored) == []
    assert restored["digest"] == doc["digest"]


def test_validation_catches_tampering(doc):
    bad = copy.deepcopy(doc)
    bad["ops"]["ping"]["e2e_s"] *= 2
    problems = validate_obs_document(bad)
    # both the document digest and the phase-sum identity break
    assert any("digest" in p for p in problems)
    assert any("phase sum" in p for p in problems)

    wrong_schema = copy.deepcopy(doc)
    wrong_schema["schema"] = "repro-obs/0"
    assert validate_obs_document(wrong_schema)


def test_render_contains_phase_budget_and_sections(doc):
    text = render_report(doc)
    assert OBS_SCHEMA in text
    assert "ping" in text
    for head in ("clnt-cpu", "net", "srv-cpu", "p95(ms)"):
        assert head in text
    assert "all ops" in text
    assert "hot files" in text and "0:7" in text
    assert "hot clients" in text
    # no clamp warning on a clean run
    assert "WARNING" not in text


def test_identical_documents_diff_to_zero(doc):
    assert diff_reports(doc, copy.deepcopy(doc)) == []


def test_same_seed_reruns_diff_to_zero(doc):
    again = _run_doc()
    assert again["digest"] == doc["digest"]
    assert diff_reports(again, doc) == []


def test_diff_flags_latency_regression(doc):
    worse = copy.deepcopy(doc)
    op = worse["ops"]["ping"]
    op["e2e_s"] *= 1.5
    op["p95_s"] *= 1.5
    op["digest"] = "tampered"  # distinct distribution: no short-circuit
    worse["digest"] = "tampered"
    out = diff_reports(worse, doc)
    assert any("e2e_s" in line for line in out)
    assert any("p95_s" in line for line in out)
    # but a generous threshold waves it through
    assert diff_reports(worse, doc, thresholds={"e2e_s": 10.0, "p95_s": 10.0}) == []


def test_diff_ignores_improvements(doc):
    better = copy.deepcopy(doc)
    op = better["ops"]["ping"]
    op["e2e_s"] *= 0.5
    for p in PHASES:
        op["phases"][p] *= 0.5
    op["digest"] = "improved"
    better["digest"] = "improved"
    assert diff_reports(better, doc) == []


def test_diff_flags_missing_and_new_ops(doc):
    changed = copy.deepcopy(doc)
    changed["digest"] = "changed"
    changed["ops"]["pong2"] = copy.deepcopy(changed["ops"]["ping"])
    del changed["ops"]["ping"]
    out = diff_reports(changed, doc)
    assert any("missing in run" in line for line in out)
    assert any("new in run" in line for line in out)


def test_diff_flags_clamp_increase(doc):
    clamped = copy.deepcopy(doc)
    clamped["digest"] = "clamped"
    clamped["sampler_clamps"] = {"server-cpu": 3}
    out = diff_reports(clamped, doc)
    assert any("clamp" in line for line in out)
