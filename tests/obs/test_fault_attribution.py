"""Queue-wait accounting under fault injection.

The satellite requirement: injected latency bursts must land in the
**network** phase of the attribution, not in server queueing — the obs
layer must not mistake a slow wire for a congested server.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, LatencyBurst, LossBurst
from repro.host import Host, HostConfig
from repro.net import Network, NetworkConfig


def _cluster(runner, seed=11, service_cpu=0.001):
    sim = runner.sim
    obs = sim.enable_obs()
    net = Network(sim, NetworkConfig(seed=seed))
    a = Host(sim, net, "a", HostConfig.titan_client())
    b = Host(sim, net, "b", HostConfig.titan_client())

    def pong(src):
        yield from b.cpu.consume(service_cpu)
        return "pong"

    b.rpc.register("ping", pong)
    return obs, net, a, b


def _hammer(runner, a, n=40):
    from repro.net.rpc import RpcTimeout

    ok = [0]

    def caller():
        for _ in range(n):
            try:
                yield from a.rpc.call("b", "ping")
            except RpcTimeout:
                continue
            ok[0] += 1

    runner.run(caller(), limit=1e6)
    return ok[0]


def _phases(obs):
    op = obs.ops["ping"]
    return op["count"], op["phases"]


def test_latency_burst_lands_in_net_not_server_queue(runner):
    """A sub-timeout latency burst inflates only the network phase."""
    obs, net, a, b = _cluster(runner)
    inj = FaultInjector(runner.sim, network=net)
    # +80 ms per packet: well under the 1 s RPC timeout, so no
    # retransmissions — pure transit inflation
    inj.install(
        FaultPlan(
            events=(LatencyBurst(start=0.0, duration=1e6, extra=0.08),), seed=11
        )
    )
    _hammer(runner, a)
    count, phases = _phases(obs)
    assert count == 40
    # each call pays >= 2 * 80 ms of injected transit
    assert phases["net"] >= count * 2 * 0.08 * 0.99
    assert phases["server_queue"] == pytest.approx(0.0, abs=1e-9)
    assert phases["retrans_wait"] == pytest.approx(0.0, abs=1e-9)


def test_baseline_net_phase_is_small(runner):
    obs, net, a, b = _cluster(runner)
    _hammer(runner, a)
    count, phases = _phases(obs)
    assert count == 40
    # LAN transit without faults is far below the injected 160 ms/call
    assert phases["net"] < count * 0.02


def test_loss_burst_lands_in_retrans_wait(runner):
    """Dropped packets cost retransmit-timer waits, not server time."""
    obs, net, a, b = _cluster(runner, seed=5)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(events=(LossBurst(start=0.0, duration=1e6, rate=0.4),), seed=5)
    )
    ok = _hammer(runner, a, n=30)
    count, phases = _phases(obs)
    assert count == ok and ok > 10
    assert phases["retrans_wait"] > 0
    assert phases["server_queue"] == pytest.approx(0.0, abs=1e-9)
    # server CPU per executed call (2 ms rpc_cpu + 1 ms handler) is
    # unchanged by the network faults — no phantom server work
    assert phases["server_cpu"] == pytest.approx(count * 0.003, rel=0.01)


def test_phase_sum_identity_survives_faults(runner):
    from repro.obs import PHASES

    obs, net, a, b = _cluster(runner, seed=7)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(
            events=(
                LossBurst(start=0.0, duration=1e6, rate=0.3),
                LatencyBurst(start=0.0, duration=1e6, extra=0.05),
            ),
            seed=7,
        )
    )
    ok = _hammer(runner, a, n=25)
    op = obs.ops["ping"]
    assert op["count"] == ok and ok > 5
    total = sum(op["phases"][p] for p in PHASES)
    assert total == pytest.approx(op["e2e_s"], rel=1e-9)
