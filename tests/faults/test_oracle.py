"""Tests for the consistency oracle: the tracer-level judgement logic
plus the end-of-run server checks."""

import pytest

from repro.faults import ConsistencyOracle
from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.nfs import NfsClient, NfsServer
from repro.snfs import SnfsClient, SnfsServer


# -- close-to-open judgement, driven directly through the tracer API ---------


def commit(o, host, path, data, t):
    """One write session: open(trunc) .. write .. close."""
    o.on_open(host, 1, path, True, True, t)
    o.on_write(host, 1, 0, data, t + 0.1)
    o.on_close(host, 1, t + 0.2)


def test_stale_read_after_commit_is_flagged():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    commit(o, "w", "/f", b"new!", 2.0)
    o.on_open("r", 2, "/f", False, False, 3.0)
    o.on_read("r", 2, 0, 4, b"old!", 3.1)  # older than the last commit
    assert o.summary() == {"close-to-open": 1}


def test_fresh_read_is_clean():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    commit(o, "w", "/f", b"new!", 2.0)
    o.on_open("r", 2, "/f", False, False, 3.0)
    o.on_read("r", 2, 0, 4, b"new!", 3.1)
    assert o.ok


def test_commit_after_open_is_also_acceptable():
    """A commit landing between open and read may legitimately be seen
    (the reader's window only bounds staleness, not freshness)."""
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    o.on_open("r", 2, "/f", False, False, 3.0)
    commit(o, "w", "/f", b"new!", 4.0)
    o.on_read("r", 2, 0, 4, b"new!", 5.0)
    # the writer's session [4.0, 4.2] overlaps the reader's window, so
    # this read is in write-sharing territory and is not judged at all
    assert o.ok


def test_read_your_own_writes_not_judged():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    o.on_open("w", 3, "/f", True, False, 2.0)
    o.on_write("w", 3, 0, b"mine", 2.1)
    o.on_read("w", 3, 0, 4, b"mine", 2.2)
    assert o.ok


def test_concurrent_write_sharing_not_judged():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    o.on_open("w", 3, "/f", True, False, 2.0)  # writer holds it open
    o.on_open("r", 2, "/f", False, False, 2.5)
    o.on_read("r", 2, 0, 4, b"????", 2.6)  # anything goes: no promise
    assert o.ok


def test_pre_oracle_content_not_judged():
    o = ConsistencyOracle()
    o.on_open("r", 2, "/f", False, False, 1.0)
    o.on_read("r", 2, 0, 4, b"????", 1.1)
    assert o.ok


def test_unlink_forgets_history():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    o.on_unlink("w", "/f", 2.0)
    o.on_open("r", 2, "/f", False, False, 3.0)
    o.on_read("r", 2, 0, 4, b"????", 3.1)  # re-created file: no history
    assert o.ok


def test_rename_moves_history():
    o = ConsistencyOracle()
    commit(o, "w", "/a", b"data", 1.0)
    o.on_rename("w", "/a", "/b", 2.0)
    o.on_open("r", 2, "/b", False, False, 3.0)
    o.on_read("r", 2, 0, 4, b"data", 3.1)
    assert o.ok
    o.on_open("r", 3, "/b", False, False, 4.0)
    o.on_read("r", 3, 0, 4, b"????", 4.1)
    assert o.summary() == {"close-to-open": 1}


def test_host_crash_kills_sessions_without_commit():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"old!", 1.0)
    o.on_open("w", 3, "/f", True, False, 2.0)
    o.on_write("w", 3, 0, b"lost", 2.1)
    o.on_host_crash("w", 2.2)  # dies before close: nothing committed
    o.on_open("r", 2, "/f", False, False, 3.0)
    o.on_read("r", 2, 0, 4, b"old!", 3.1)
    assert o.ok


def test_truncate_commits_shrunk_content():
    o = ConsistencyOracle()
    commit(o, "w", "/f", b"abcdef", 1.0)
    o.on_truncate("w", "/f", 3, 2.0)
    o.on_open("r", 2, "/f", False, False, 3.0)
    o.on_read("r", 2, 0, 3, b"abc", 3.1)
    assert o.ok


# -- end-of-run checks against real servers ----------------------------------


def _nfs_world(runner):
    sim = runner.sim
    net = Network(sim)
    server_host = Host(sim, net, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    server = NfsServer(server_host, export)
    client_host = Host(sim, net, "client0", HostConfig.titan_client())
    mount = NfsClient("nfs0", client_host, "server")
    runner.run(mount.attach())
    client_host.kernel.mount("/data", mount)
    return server, client_host, export


def _write(k, path, data):
    fd = yield from k.open(path, OpenMode.WRITE, create=True, truncate=True)
    yield from k.write(fd, data)
    yield from k.close(fd)


def test_lost_acked_write_detected(runner):
    server, client, export = _nfs_world(runner)
    oracle = ConsistencyOracle()
    oracle.watch_server(server)
    k = client.kernel
    runner.run(_write(k, "/data/f", b"x" * 100))
    runner.run(k.sync())
    assert oracle.check_lost_acked_writes() == 0

    # sabotage stable storage behind the server's back: acknowledged
    # bytes vanish, which no real execution should ever produce
    lfs = export.lfs
    (key,) = [k_ for k_ in oracle._acked[0] if oracle._acked[0][k_]]
    inode = lfs._inodes[key[1]]
    for addr in inode.blocks.values():
        lfs._data[addr] = b"\0" * len(lfs._data.get(addr, b""))
    assert oracle.check_lost_acked_writes() == 1
    assert oracle.summary() == {"lost-acked-write": 1}


def _snfs_world(runner):
    sim = runner.sim
    net = Network(sim)
    server_host = Host(sim, net, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    server = SnfsServer(server_host, export)
    client_host = Host(sim, net, "client0", HostConfig.titan_client())
    mount = SnfsClient("snfs0", client_host, "server")
    runner.run(mount.attach())
    client_host.kernel.mount("/data", mount)
    return server, client_host, mount


def test_state_agreement_clean_and_after_drift(runner):
    server, client, mount = _snfs_world(runner)
    oracle = ConsistencyOracle()
    k = client.kernel
    runner.run(_write(k, "/data/f", b"hello"))
    fd = runner.run(k.open("/data/f", OpenMode.WRITE))
    assert oracle.check_state_agreement(server, [mount]) == 0

    # simulate state drift: the server forgets the client's open
    dropped = server.state.drop_client_all("client0")
    assert dropped
    assert oracle.check_state_agreement(server, [mount]) >= 1
    assert all(v.kind == "state-mismatch" for v in oracle.violations)
    runner.run(k.close(fd))


def test_state_agreement_flags_phantom_table_entry(runner):
    server, client, mount = _snfs_world(runner)
    oracle = ConsistencyOracle()
    runner.run(_write(client.kernel, "/data/f", b"hello"))
    # the client closed the file, but the table still claims it's open
    g = list(mount._gnodes.values())
    key = [e.key for e in server.state.entries()] or [
        gn.fid.key() for gn in g if gn.fid.key()[1] != 1
    ]
    server.state.open_file(key[0], "client0", False)
    assert oracle.check_state_agreement(server, [mount]) >= 1
