"""End-to-end resilience runs: the oracle's verdicts on real protocol
stacks under faults, and determinism of the whole harness."""

from repro.experiments.resilience import (
    _andrew_schedules,
    _small_tree,
    run_resilience,
    run_sharing,
)


def test_nfs_sequential_sharing_violates_close_to_open():
    run = run_sharing("nfs", seed=1, schedule="baseline")
    assert run.verdicts.get("close-to-open", 0) >= 1
    assert run.verdicts.get("lost-acked-write", 0) == 0


def test_snfs_sequential_sharing_is_consistent():
    run = run_sharing("snfs", seed=1, schedule="faulted")
    assert run.verdicts == {}


def test_rfs_sequential_sharing_is_consistent():
    run = run_sharing("rfs", seed=1, schedule="faulted")
    assert run.verdicts == {}


def test_snfs_crash_reboot_andrew_is_consistent():
    """Regression: a client's delayed-write flush in flight while the
    rebooted server's copy is still stale must not surface truncated
    reads (the busy-buffer attribute-adoption bug)."""
    schedules = dict(_andrew_schedules())
    run = run_resilience(
        "snfs", "crash-reboot", schedules["crash-reboot"], seed=1, tree=_small_tree()
    )
    assert run.verdicts == {}
    assert any("crash server" in what for _, what in run.fault_log)
    assert any("reboot server" in what for _, what in run.fault_log)


def test_faulted_sharing_run_is_deterministic():
    a = run_sharing("nfs", seed=5, schedule="faulted")
    b = run_sharing("nfs", seed=5, schedule="faulted")
    assert a.elapsed == b.elapsed
    assert a.verdicts == b.verdicts
    assert a.fault_log == b.fault_log
