"""rpc.retrans / rpc.dup_hits registry counters under injected loss.

Satellite of the observability PR: the fault-injection scenarios that
previously could only assert on the legacy per-endpoint Counters now
also land in the unified MetricsRegistry, with per-proc labels.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, LossBurst
from repro.host import Host, HostConfig
from repro.net import Network, NetworkConfig, RpcTimeout


def _ping_cluster(runner, seed=11):
    sim = runner.sim
    metrics = sim.enable_metrics()
    net = Network(sim, NetworkConfig(seed=seed))
    a = Host(sim, net, "a", HostConfig.titan_client())
    b = Host(sim, net, "b", HostConfig.titan_client())

    def pong(src):
        yield sim.timeout(0.0001)
        return "pong"

    b.rpc.register("ping", pong)
    return metrics, net, a, b


def _hammer(runner, a, n=60, tolerate_timeouts=False):
    def caller():
        for _ in range(n):
            try:
                yield from a.rpc.call("b", "ping")
            except RpcTimeout:
                if not tolerate_timeouts:
                    raise

    runner.run(caller(), limit=1e6)


def test_loss_burst_lands_in_retrans_counter(runner):
    metrics, net, a, b = _ping_cluster(runner)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(events=(LossBurst(start=0.0, duration=600.0, rate=0.4),), seed=11)
    )
    _hammer(runner, a, tolerate_timeouts=True)
    retrans = metrics.counter("rpc.retrans")
    assert retrans.total() > 0
    assert retrans.get(proc="ping", endpoint="a") == retrans.total()
    # the legacy per-endpoint counter agrees
    assert a.rpc.client_stats.get("ping.retransmit") == retrans.total()


def test_dup_hits_counted_when_replies_are_lost(runner):
    # drop many packets: some retransmissions arrive while (or after)
    # the original executed, hitting the server's duplicate cache
    metrics, net, a, b = _ping_cluster(runner, seed=5)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(events=(LossBurst(start=0.0, duration=3000.0, rate=0.45),), seed=5)
    )
    _hammer(runner, a, n=120, tolerate_timeouts=True)
    dup = metrics.counter("rpc.dup_hits")
    assert dup.total() > 0
    by_kind = {
        kind: dup.get(proc="ping", endpoint="b", kind=kind)
        for kind in ("busy", "done")
    }
    assert sum(by_kind.values()) == dup.total()


def test_clean_network_records_no_retrans(runner):
    metrics, net, a, b = _ping_cluster(runner)
    _hammer(runner, a, n=20)
    assert metrics.counter("rpc.retrans").total() == 0
    assert metrics.counter("rpc.dup_hits").total() == 0
    latency = metrics.histogram("rpc.latency")
    assert latency.count(proc="ping", endpoint="a", server="b") == 20
    assert latency.mean(proc="ping", endpoint="a", server="b") > 0


def test_metrics_off_means_no_registry(runner):
    sim = runner.sim
    net = Network(sim, NetworkConfig(seed=1))
    a = Host(sim, net, "a", HostConfig.titan_client())
    b = Host(sim, net, "b", HostConfig.titan_client())

    def pong(src):
        yield sim.timeout(0.0001)
        return "pong"

    b.rpc.register("ping", pong)
    _hammer(runner, a, n=5)
    assert sim.metrics is None  # nothing was silently enabled
