"""The injector's observability routing: every fault event lands in the
metrics registry as a labeled ``faults.events`` counter, and — opt-in —
on the trace timeline as a ``fault.*`` instant.

Trace instants are opt-in (``FaultInjector(trace=True)``) because the
pinned golden traces of historical faulted scenarios predate fault
instants and must stay byte-identical; the metrics counter is
unconditional because no golden digest covers metrics.
"""

from repro.faults import FaultInjector, FaultPlan, LatencyBurst, LossBurst, Partition
from repro.net import Network, NetworkConfig


def make_net(runner, seed=0):
    return Network(runner.sim, NetworkConfig(seed=seed))


PLAN = FaultPlan(
    events=(
        Partition(start=1.0, duration=2.0, a="a", b="b"),
        LossBurst(start=1.5, duration=1.0, rate=0.1),
        LatencyBurst(start=2.0, duration=1.0, extra=0.01),
    )
)


def drain(runner, until=10.0):
    def idle():
        yield runner.sim.timeout(until)

    runner.run(idle())


def test_fault_events_feed_the_metrics_registry(runner):
    metrics = runner.sim.enable_metrics()
    inj = FaultInjector(runner.sim, network=make_net(runner))
    inj.install(PLAN)
    drain(runner)
    counts = metrics.counter("faults.events").as_dict()
    assert counts == {
        "kind=heal": 1,
        "kind=latency": 1,
        "kind=latency_end": 1,
        "kind=loss": 1,
        "kind=loss_end": 1,
        "kind=partition": 1,
    }
    # the log stays the authoritative ordered record
    assert len(inj.log) == 6


def test_fault_events_without_metrics_enabled_still_log(runner):
    assert runner.sim.metrics is None
    inj = FaultInjector(runner.sim, network=make_net(runner))
    inj.install(PLAN)
    drain(runner)
    assert len(inj.log) == 6


def test_trace_instants_are_opt_in(runner):
    runner.sim.enable_tracer()
    inj = FaultInjector(runner.sim, network=make_net(runner))
    assert inj.trace is False
    inj.install(PLAN)
    drain(runner)
    names = [ev.name for ev in runner.sim.tracer.events if ev.name.startswith("fault.")]
    assert names == []


def test_trace_instants_when_enabled(runner):
    runner.sim.enable_tracer()
    inj = FaultInjector(runner.sim, network=make_net(runner), trace=True)
    inj.install(PLAN)
    drain(runner)
    names = sorted(
        ev.name for ev in runner.sim.tracer.events if ev.name.startswith("fault.")
    )
    assert names == [
        "fault.heal",
        "fault.latency",
        "fault.latency_end",
        "fault.loss",
        "fault.loss_end",
        "fault.partition",
    ]
