"""Tests for the deterministic fault-injection scheduler."""

import pytest

from repro.experiments import build_testbed
from repro.faults import (
    CrashReboot,
    DiskFault,
    FaultInjector,
    FaultPlan,
    LatencyBurst,
    LossBurst,
    Partition,
    SlowDisk,
)
from repro.host import Host, HostConfig
from repro.net import Network, NetworkConfig, RpcTimeout
from repro.sim import Simulator
from repro.storage import DiskError


def make_net(runner, seed=0):
    return Network(runner.sim, NetworkConfig(seed=seed))


def probe_at(runner, times, sample):
    """Run the sim past each time in ``times``, sampling ``sample()``."""
    out = []

    def probe():
        last = 0.0
        for t in times:
            yield runner.sim.timeout(t - last)
            out.append(sample())
            last = t

    runner.run(probe())
    return out


def test_partition_window_blocks_and_heals(runner):
    net = make_net(runner)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(events=(Partition(start=5.0, duration=10.0, a="a", b="b"),))
    )
    states = probe_at(
        runner,
        [1.0, 6.0, 20.0],
        lambda: (net.link_blocked("a", "b"), net.link_blocked("b", "a")),
    )
    assert states == [(False, False), (True, True), (False, False)]
    assert [what for _, what in inj.log] == [
        "partition a <-> b",
        "heal a <-> b",
    ]


def test_asymmetric_partition_blocks_one_direction(runner):
    net = make_net(runner)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(
            events=(
                Partition(start=1.0, duration=4.0, a="a", b="b", symmetric=False),
            )
        )
    )
    states = probe_at(
        runner,
        [2.0, 10.0],
        lambda: (net.link_blocked("a", "b"), net.link_blocked("b", "a")),
    )
    assert states == [(True, False), (False, False)]


def test_overlapping_partitions_refcount(runner):
    net = make_net(runner)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(
            events=(
                Partition(start=1.0, duration=10.0, a="a", b="b"),
                Partition(start=5.0, duration=10.0, a="a", b="b"),
            )
        )
    )
    states = probe_at(
        runner, [6.0, 12.0, 16.0], lambda: net.link_blocked("a", "b")
    )
    # still blocked at 12.0: the second window holds the link down
    assert states == [True, True, False]


def test_permanent_partition_never_heals(runner):
    net = make_net(runner)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(events=(Partition(start=1.0, duration=None, a="a", b="b"),))
    )
    states = probe_at(runner, [2.0, 1000.0], lambda: net.link_blocked("a", "b"))
    assert states == [True, True]


def test_loss_and_latency_bursts_revert(runner):
    net = make_net(runner)
    inj = FaultInjector(runner.sim, network=net)
    inj.install(
        FaultPlan(
            events=(
                LossBurst(start=2.0, duration=5.0, rate=0.25),
                LatencyBurst(start=3.0, duration=5.0, extra=0.05),
            )
        )
    )
    states = probe_at(
        runner, [4.0, 20.0], lambda: (net.extra_drop, net.extra_latency)
    )
    assert states[0] == (0.25, 0.05)
    assert states[1] == (0.0, 0.0)


def test_disk_fault_and_slow_disk_windows(runner):
    host = Host(runner.sim, make_net(runner), "h", HostConfig.titan_client(), seed=3)
    disk = host.add_disk("disk0")
    inj = FaultInjector(runner.sim, disks={disk.name: disk})
    inj.install(
        FaultPlan(
            events=(
                DiskFault(start=1.0, duration=4.0, disk=disk.name, error_rate=0.5),
                SlowDisk(start=1.0, duration=4.0, disk=disk.name, factor=8.0),
            )
        )
    )
    states = probe_at(
        runner, [2.0, 10.0], lambda: (disk.error_rate, disk.slow_factor)
    )
    assert states[0] == (0.5, 8.0)
    assert states[1] == (0.0, 1.0)


def test_disk_errors_are_retried_then_fatal(runner):
    host = Host(runner.sim, make_net(runner), "h", HostConfig.titan_client(), seed=3)
    disk = host.add_disk("disk0")

    disk.error_rate = 0.5
    runner.run(disk.read(10))  # retried transparently
    assert disk.stats.get("io_errors") > 0

    disk.error_rate = 1.0  # nothing can succeed: the retry budget runs out
    with pytest.raises(DiskError):
        runner.run(disk.read(10))


def test_crash_reboot_schedule(runner):
    net = make_net(runner)
    host = Host(runner.sim, net, "victim", HostConfig.titan_client())
    inj = FaultInjector(runner.sim, targets={"victim": host})
    inj.install(
        FaultPlan(events=(CrashReboot(at=2.0, target="victim", down_for=3.0),))
    )
    states = probe_at(runner, [3.0, 10.0], lambda: host.crashed)
    assert states == [True, False]
    assert [what for _, what in inj.log] == ["crash victim", "reboot victim"]


def test_crash_without_reboot_stays_down(runner):
    net = make_net(runner)
    host = Host(runner.sim, net, "victim", HostConfig.titan_client())
    inj = FaultInjector(runner.sim, targets={"victim": host})
    inj.install(FaultPlan(events=(CrashReboot(at=2.0, target="victim"),)))
    states = probe_at(runner, [3.0, 500.0], lambda: host.crashed)
    assert states == [True, True]


def test_unknown_event_type_rejected(runner):
    inj = FaultInjector(runner.sim)
    with pytest.raises(TypeError):
        inj.install(FaultPlan(events=(object(),)))


def test_faulted_run_is_deterministic(runner):
    """Same plan + seed -> identical packet-drop decisions."""

    def one_run():
        sim = Simulator()
        net = Network(sim, NetworkConfig(seed=9))
        a = Host(sim, net, "a", HostConfig.titan_client())
        b = Host(sim, net, "b", HostConfig.titan_client())

        def pong(src):
            yield sim.timeout(0.0001)
            return "pong"

        b.rpc.register("ping", pong)
        inj = FaultInjector(sim, network=net)
        inj.install(
            FaultPlan(events=(LossBurst(start=0.0, duration=60.0, rate=0.4),), seed=9)
        )
        times = []

        def caller():
            for _ in range(30):
                yield from a.rpc.call("b", "ping")
                times.append(sim.now)

        proc = sim.spawn(caller())
        sim.run_until(proc, limit=1e6)
        assert proc.triggered and proc.exception is None
        return times

    first, second = one_run(), one_run()
    assert first == second
    assert len(first) == 30


def test_build_testbed_threads_seed_into_fault_rngs():
    bed_a = build_testbed("nfs", seed=7)
    bed_b = build_testbed("nfs", seed=7)
    bed_c = build_testbed("nfs", seed=8)
    assert bed_a.network._rng.random() == bed_b.network._rng.random()
    assert bed_a.network._rng.random() != bed_c.network._rng.random()
    for name in bed_a.client.disks:
        ra = bed_a.client.disks[name]._fault_rng.random()
        rb = bed_b.client.disks[name]._fault_rng.random()
        rc = bed_c.client.disks[name]._fault_rng.random()
        assert ra == rb != rc
    # distinct disks on one host must not share a fault stream
    server_disks = list(bed_a.server_host.disks.values())
    client_disks = list(bed_a.client.disks.values())
    streams = {d._fault_rng.random() for d in server_disks + client_disks}
    assert len(streams) == len(server_disks) + len(client_disks)
