"""Tests for the sharded failover nemesis cells."""

import pytest

from repro.nemesis import (
    SHARDED_PROTOCOLS,
    render_sharded_cells,
    run_sharded_cell,
    run_sharded_cells,
)
from repro.nemesis.matrix import cell_seed, nemesis_document


@pytest.mark.parametrize("protocol", SHARDED_PROTOCOLS)
def test_sharded_failover_cell_passes(protocol):
    cell = run_sharded_cell(protocol, seed=1)
    assert cell.error is None
    assert cell.verdict == "pass"
    assert cell.violations == {}
    # the plan really fired: shard 0 power-cycled twice (the second
    # crash inside the first reboot's grace window) ...
    assert cell.stats["shard0_reboots"] == 2
    assert cell.fault_events > 0
    # ... and no healthy shard noticed
    assert cell.stats["healthy_epochs_stable"] == 1
    # the workload did real sharing through the window
    assert cell.stats["writes"] > 0
    assert cell.stats["reads"] > 0


def test_sharded_cell_seed_is_deterministic():
    a = run_sharded_cell("snfs", seed=1)
    b = run_sharded_cell("snfs", seed=1)
    assert a.as_dict() == b.as_dict()
    assert a.seed == cell_seed(a.id, 1)


def test_sharded_cells_reject_unknown_protocol():
    with pytest.raises(ValueError):
        run_sharded_cells(protocols=("nfs",))


def test_sharded_cells_render_and_document():
    cells = run_sharded_cells(seed=1)
    assert len(cells) == len(SHARDED_PROTOCOLS)
    text = render_sharded_cells(cells, seed=1)
    assert "shard0-crash-during-grace" in text
    assert "FAIL" not in text
    # the cells slot into the standard nemesis document machinery
    doc = nemesis_document(cells, seed=1)
    assert doc["summary"]["pass"] == len(cells)
    assert doc["summary"]["fail"] == 0
