"""The nemesis conformance engine: determinism, verdict classification,
the schema-versioned document, and the CLI contract."""

import json

import pytest

from repro.nemesis import (
    ALL_PROTOCOLS,
    NEMESIS_PLANS,
    NEMESIS_SCHEMA,
    NEMESIS_WORKLOADS,
    QUICK_PLANS,
    NemesisCell,
    cell_seed,
    nemesis_document,
    plan_events,
    render_matrix,
    run_cell,
    run_matrix,
    validate_nemesis_document,
)


# -- seeds and schedules -----------------------------------------------------


def test_cell_seeds_are_stable_across_processes():
    # pinned values: crc32 is process-independent (unlike hash());
    # changing the derivation breaks every printed repro command
    assert cell_seed("snfs/seq-sharing/calm", 1) == 480424200
    assert cell_seed("lease/meta-churn/server-crash", 1) == 1534422087


def test_cell_seeds_differ_per_cell_and_per_base_seed():
    a = cell_seed("nfs/seq-sharing/calm", 1)
    b = cell_seed("snfs/seq-sharing/calm", 1)
    c = cell_seed("nfs/seq-sharing/calm", 2)
    assert len({a, b, c}) == 3


def test_every_plan_materializes():
    for name, spec in NEMESIS_PLANS.items():
        events = plan_events(name)
        if name == "calm":
            assert events == ()
        else:
            assert events
        crashes = any(type(ev).__name__ == "CrashReboot" for ev in events)
        assert crashes == spec.crashes_server


def test_quick_plans_are_real_plans_and_include_a_compound_crash():
    assert set(QUICK_PLANS) <= set(NEMESIS_PLANS)
    assert "crash-during-grace" in QUICK_PLANS


def test_unknown_names_are_rejected():
    with pytest.raises(ValueError):
        plan_events("nope")
    with pytest.raises(ValueError):
        run_matrix(protocols=("nfs",), workloads=("nope",))
    with pytest.raises(ValueError):
        run_matrix(protocols=("nfs",), plans=("nope",))
    with pytest.raises(ValueError):
        run_matrix(only="nfs/seq-sharing/not-a-plan")


# -- the --only filter -------------------------------------------------------


def test_only_accepts_fnmatch_patterns():
    cells = run_matrix(seed=1, only="rfs/meta-churn/calm")
    assert [c.id for c in cells] == ["rfs/meta-churn/calm"]
    cells = run_matrix(seed=1, only="rfs/*/calm")
    assert [c.id for c in cells] == ["rfs/seq-sharing/calm", "rfs/meta-churn/calm"]
    cells = run_matrix(seed=1, plans=("calm",), only="*/meta-churn/*")
    assert [c.id for c in cells] == [
        "%s/meta-churn/calm" % p for p in ALL_PROTOCOLS
    ]


def test_only_with_no_match_raises():
    with pytest.raises(ValueError, match="no cell matches"):
        run_matrix(seed=1, only="zfs/*")


def test_matched_cells_keep_their_full_matrix_seeds():
    # a filtered run must reproduce the full matrix's cells exactly
    (cell,) = run_matrix(seed=7, only="rfs/meta-churn/calm")
    assert cell.seed == cell_seed("rfs/meta-churn/calm", 7)


# -- parallel execution ------------------------------------------------------


def test_matrix_rows_identical_serial_vs_pooled():
    kwargs = dict(seed=1, protocols=("rfs",), workloads=("meta-churn",),
                  plans=("calm", "flaky-net"))
    serial = run_matrix(jobs=1, **kwargs)
    pooled = run_matrix(jobs=2, **kwargs)
    assert [c.as_dict() for c in serial] == [c.as_dict() for c in pooled]
    assert (
        nemesis_document(serial, 1)["digest"]
        == nemesis_document(pooled, 1)["digest"]
    )


def test_nemesis_cell_round_trips_from_dict():
    cell = run_cell("rfs", "meta-churn", "calm", seed=5)
    clone = NemesisCell.from_dict(cell.as_dict())
    assert clone.as_dict() == cell.as_dict()


def test_timing_block_rides_outside_the_digest():
    timing = {}
    cells = run_matrix(seed=1, protocols=("rfs",), workloads=("meta-churn",),
                       plans=("calm",), timing=timing)
    assert timing["jobs"] == 1
    assert len(timing["cells"]) == 1
    with_timing = nemesis_document(cells, 1, timing=timing)
    without = nemesis_document(cells, 1)
    assert with_timing["digest"] == without["digest"]
    assert validate_nemesis_document(with_timing) == []
    assert with_timing["timing"]["cells"][0]["name"] == "rfs/meta-churn/calm"


# -- verdict classification --------------------------------------------------


def test_nfs_staleness_is_expected_not_fail():
    cell = run_cell("nfs", "seq-sharing", "calm", seed=1)
    assert cell.error is None
    assert cell.violations.get("close-to-open", 0) > 0
    assert cell.verdict == "expected"
    assert cell.allowed == ["close-to-open"]


def test_snfs_crash_cell_passes_with_recovery_engaged():
    cell = run_cell("snfs", "seq-sharing", "server-crash", seed=1)
    assert cell.error is None
    assert cell.violations == {}
    assert cell.verdict == "pass"
    assert cell.recovery_rejections > 0
    assert cell.fault_events == 2  # crash + reboot


def test_run_cell_is_deterministic():
    a = run_cell("nfs", "meta-churn", "flaky-net", seed=4)
    b = run_cell("nfs", "meta-churn", "flaky-net", seed=4)
    assert a.as_dict() == b.as_dict()


# -- the document ------------------------------------------------------------


@pytest.fixture(scope="module")
def small_doc():
    cells = run_matrix(
        seed=1, protocols=("rfs",), workloads=("meta-churn",),
        plans=("calm", "flaky-net"),
    )
    return cells, nemesis_document(cells, 1)


def test_document_shape_and_self_validation(small_doc):
    cells, doc = small_doc
    assert doc["schema"] == NEMESIS_SCHEMA
    assert doc["summary"]["pass"] + doc["summary"]["expected"] + doc[
        "summary"
    ]["fail"] == len(cells)
    assert validate_nemesis_document(doc) == []
    # survives a JSON round trip (what the CI job actually validates)
    assert validate_nemesis_document(json.loads(json.dumps(doc))) == []


def test_document_digest_covers_the_cells(small_doc):
    _, doc = small_doc
    tampered = json.loads(json.dumps(doc))
    tampered["cells"][0]["verdict"] = "pass" if tampered["cells"][0][
        "verdict"
    ] != "pass" else "expected"
    problems = validate_nemesis_document(tampered)
    assert any("digest" in p for p in problems)


def test_validation_catches_missing_and_wrong_fields(small_doc):
    _, doc = small_doc
    bad = json.loads(json.dumps(doc))
    del bad["cells"][0]["violations"]
    bad["cells"][0]["verdict"] = "maybe"
    bad["schema"] = "something-else"
    problems = validate_nemesis_document(bad)
    assert any("schema" in p for p in problems)
    assert any("violations" in p for p in problems)
    assert any("verdict" in p for p in problems)
    assert validate_nemesis_document([]) == ["document is not an object"]


def test_matrix_covers_requested_axes(small_doc):
    cells, doc = small_doc
    assert [c.id for c in cells] == [
        "rfs/meta-churn/calm",
        "rfs/meta-churn/flaky-net",
    ]
    assert doc["protocols"] == ["rfs"]
    assert doc["plans"] == ["calm", "flaky-net"]
    assert tuple(p for p in ALL_PROTOCOLS) == ("nfs", "snfs", "rfs", "kent", "lease")
    assert set(NEMESIS_WORKLOADS) == {"seq-sharing", "meta-churn"}


# -- rendering ---------------------------------------------------------------


def test_render_prints_repro_command_for_failures(small_doc):
    cells, _ = small_doc
    fake = NemesisCell(
        id="snfs/seq-sharing/calm", protocol="snfs", workload="seq-sharing",
        plan="calm", seed=123, verdict="fail",
        violations={"lost-acked-write": 2},
    )
    text = render_matrix(list(cells) + [fake], seed=1)
    assert "FAIL snfs/seq-sharing/calm" in text
    assert "python -m repro nemesis --seed 1 --only snfs/seq-sharing/calm" in text
    # clean cells carry no repro noise
    clean = render_matrix(list(cells), seed=1)
    assert "reproduce:" not in clean
