"""Tests for the disk model."""

import pytest

from repro.sim import Simulator
from repro.storage import Disk, DiskConfig


def make_disk(**kw):
    sim = Simulator()
    return sim, Disk(sim, DiskConfig(**kw))


def run(sim, gen):
    out = {}

    def wrapper(sim):
        out["value"] = yield from gen
        return out["value"]

    sim.spawn(wrapper(sim))
    sim.run()
    return out.get("value")


def test_single_read_latency():
    sim, disk = make_disk(
        avg_seek=0.020, avg_rotation=0.010, transfer_rate=1e6, block_size=1000
    )
    run(sim, disk.read(addr=100, n_blocks=1))
    # seek + rotation + 1 ms transfer
    assert sim.now == pytest.approx(0.031)
    assert disk.stats.get("reads") == 1
    assert disk.stats.get("read_blocks") == 1


def test_sequential_access_skips_seek():
    sim, disk = make_disk(
        avg_seek=0.020, avg_rotation=0.010, transfer_rate=1e6, block_size=1000
    )

    def scenario(sim):
        yield from disk.read(addr=0, n_blocks=1)  # 31 ms
        yield from disk.read(addr=1, n_blocks=1)  # sequential: 1 ms

    sim.spawn(scenario(sim))
    sim.run()
    assert sim.now == pytest.approx(0.032)


def test_non_sequential_pays_seek_again():
    sim, disk = make_disk(
        avg_seek=0.020, avg_rotation=0.010, transfer_rate=1e6, block_size=1000
    )

    def scenario(sim):
        yield from disk.read(addr=0, n_blocks=1)
        yield from disk.read(addr=500, n_blocks=1)

    sim.spawn(scenario(sim))
    sim.run()
    assert sim.now == pytest.approx(0.062)


def test_multiblock_transfer_time():
    sim, disk = make_disk(
        avg_seek=0.0, avg_rotation=0.0, transfer_rate=1e6, block_size=1000
    )
    run(sim, disk.write(addr=0, n_blocks=10))
    assert sim.now == pytest.approx(0.010)
    assert disk.stats.get("writes") == 1
    assert disk.stats.get("write_blocks") == 10


def test_fifo_queueing_serializes_requests():
    sim, disk = make_disk(
        avg_seek=0.010, avg_rotation=0.0, transfer_rate=1e9, block_size=1000
    )
    done = []

    def reader(sim, tag, addr):
        yield from disk.read(addr=addr, n_blocks=1)
        done.append((tag, sim.now))

    sim.spawn(reader(sim, "a", 0))
    sim.spawn(reader(sim, "b", 100))
    sim.run()
    assert done[0][0] == "a"
    assert done[0][1] == pytest.approx(0.010, abs=1e-4)
    assert done[1][1] == pytest.approx(0.020, abs=1e-4)


def test_busy_time_tracks_utilization():
    sim, disk = make_disk(
        avg_seek=0.010, avg_rotation=0.0, transfer_rate=1e9, block_size=1000
    )

    def scenario(sim):
        yield from disk.read(addr=0, n_blocks=1)
        yield sim.timeout(1.0)  # idle gap
        yield from disk.read(addr=100, n_blocks=1)

    sim.spawn(scenario(sim))
    sim.run()
    assert disk.busy_time() == pytest.approx(0.020, abs=1e-4)


def test_zero_block_io_rejected():
    sim, disk = make_disk()

    def scenario(sim):
        with pytest.raises(ValueError):
            yield from disk.read(addr=0, n_blocks=0)

    sim.spawn(scenario(sim))
    sim.run()
