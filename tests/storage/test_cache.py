"""Tests for the block buffer cache."""

import pytest

from repro.sim import Simulator
from repro.storage import BufferCache, CacheError


def make_cache(capacity=8, flush_log=None):
    sim = Simulator()
    flushed = flush_log if flush_log is not None else []

    def flush(buf):
        yield sim.timeout(0.01)
        flushed.append(buf.key)

    cache = BufferCache(sim, capacity_blocks=capacity, flush_fn=flush)
    return sim, cache, flushed


def run(sim, gen):
    result = {}

    def wrapper(sim):
        result["value"] = yield from gen

    sim.spawn(wrapper(sim))
    sim.run()
    return result.get("value")


def test_insert_and_lookup():
    sim, cache, _ = make_cache()
    run(sim, cache.insert("f", 0, b"data"))
    buf = cache.lookup("f", 0)
    assert buf is not None
    assert buf.data == b"data"
    assert cache.stats.get("hits") == 1


def test_lookup_miss_counted():
    sim, cache, _ = make_cache()
    assert cache.lookup("f", 0) is None
    assert cache.stats.get("misses") == 1


def test_insert_existing_replaces_data():
    sim, cache, _ = make_cache()

    def scenario():
        yield from cache.insert("f", 0, b"old")
        yield from cache.insert("f", 0, b"new")

    run(sim, scenario())
    assert cache.lookup("f", 0).data == b"new"
    assert len(cache) == 1


def test_lru_eviction_of_clean_blocks():
    sim, cache, _ = make_cache(capacity=2)

    def scenario():
        yield from cache.insert("f", 0, b"a")
        yield from cache.insert("f", 1, b"b")
        cache.lookup("f", 0)  # touch 0, making 1 the LRU
        yield from cache.insert("f", 2, b"c")

    run(sim, scenario())
    assert cache.contains("f", 0)
    assert not cache.contains("f", 1)
    assert cache.contains("f", 2)


def test_dirty_eviction_flushes_first():
    sim, cache, flushed = make_cache(capacity=1)

    def scenario():
        buf = yield from cache.insert("f", 0, b"a", dirty=True)
        assert buf.dirty
        yield from cache.insert("f", 1, b"b")

    run(sim, scenario())
    assert flushed == [("f", 0)]
    assert cache.stats.get("dirty_evictions") == 1


def test_dirty_eviction_without_flush_fn_raises():
    sim = Simulator()
    cache = BufferCache(sim, capacity_blocks=1, flush_fn=None)

    def scenario():
        yield from cache.insert("f", 0, b"a", dirty=True)
        with pytest.raises(CacheError):
            yield from cache.insert("f", 1, b"b")

    run(sim, scenario())


def test_invalidate_file_drops_all_blocks():
    sim, cache, _ = make_cache()

    def scenario():
        yield from cache.insert("f", 0, b"a")
        yield from cache.insert("f", 1, b"b")
        yield from cache.insert("g", 0, b"c")

    run(sim, scenario())
    assert cache.invalidate_file("f") == 2
    assert not cache.contains("f", 0)
    assert cache.contains("g", 0)


def test_cancel_dirty_file_counts_cancelled_writes():
    sim, cache, flushed = make_cache()

    def scenario():
        yield from cache.insert("f", 0, b"a", dirty=True)
        yield from cache.insert("f", 1, b"b", dirty=True)
        yield from cache.insert("f", 2, b"c")  # clean

    run(sim, scenario())
    cancelled = cache.cancel_dirty_file("f")
    assert cancelled == 2
    assert cache.stats.get("cancelled_writes") == 2
    assert len(cache) == 0
    assert flushed == []  # nothing was ever written back


def test_dirty_buffers_age_filter():
    sim, cache, _ = make_cache()

    def scenario():
        yield from cache.insert("f", 0, b"a", dirty=True)
        yield sim.timeout(40)
        yield from cache.insert("f", 1, b"b", dirty=True)
        old = cache.dirty_buffers(older_than=30)
        assert [b.block_no for b in old] == [0]
        every = cache.dirty_buffers()
        assert sorted(b.block_no for b in every) == [0, 1]

    run(sim, scenario())


def test_flush_file_writes_all_dirty_in_order():
    sim, cache, flushed = make_cache()

    def scenario():
        yield from cache.insert("f", 3, b"d", dirty=True)
        yield from cache.insert("f", 1, b"b", dirty=True)
        yield from cache.insert("f", 2, b"c")
        yield from cache.flush_file("f")

    run(sim, scenario())
    assert flushed == [("f", 1), ("f", 3)]
    assert cache.dirty_count() == 0


def test_mark_clean_resets_age():
    sim, cache, _ = make_cache()

    def scenario():
        buf = yield from cache.insert("f", 0, b"a", dirty=True)
        cache.mark_clean(buf)
        assert not buf.dirty
        assert buf.dirty_since is None

    run(sim, scenario())


def test_hit_rate():
    sim, cache, _ = make_cache()
    run(sim, cache.insert("f", 0, b"a"))
    cache.lookup("f", 0)
    cache.lookup("f", 1)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(CacheError):
        BufferCache(sim, capacity_blocks=0)


def test_file_blocks_listing():
    sim, cache, _ = make_cache()

    def scenario():
        yield from cache.insert("f", 0, b"a")
        yield from cache.insert("f", 5, b"b")
        yield from cache.insert("g", 0, b"c")

    run(sim, scenario())
    blocks = sorted(b.block_no for b in cache.file_blocks("f"))
    assert blocks == [0, 5]
