"""Fault injection: packet loss and crashes under real workloads.

The duplicate-request cache plus retransmission must make every
protocol's operations effectively exactly-once even on a lossy network
(§2.5 cites Juszczak's non-idempotency fixes); hard-mount retry means a
lossy LAN costs time, never correctness.
"""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network, NetworkConfig
from repro.nfs import NfsClient, NfsServer
from repro.sim import Simulator
from repro.snfs import SnfsClient, SnfsServer


def build_lossy(protocol, drop_rate, seed=1234):
    sim = Simulator()
    network = Network(sim, NetworkConfig(drop_rate=drop_rate, seed=seed))
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    if protocol == "nfs":
        NfsServer(server_host, export)
        client_cls = NfsClient
    else:
        SnfsServer(server_host, export)
        client_cls = SnfsClient
    host = Host(sim, network, "client", HostConfig.titan_client())
    client = client_cls("m0", host, "server")
    drive(sim, client.attach())
    host.kernel.mount("/data", client)
    return sim, host.kernel, export, network


def drive(sim, gen, limit=1e6):
    box = {}

    def wrapper():
        box["v"] = yield from gen

    proc = sim.spawn(wrapper())
    sim.run_until(proc, limit=limit)
    if not proc.triggered:
        raise TimeoutError("did not finish")
    if proc.exception is not None:
        proc.defuse()
        raise proc.exception
    return box.get("v")


def churn_workload(k, n_files=8, blocks=3):
    for i in range(n_files):
        path = "/data/f%d" % i
        fd = yield from k.open(path, OpenMode.WRITE, create=True)
        for b in range(blocks):
            yield from k.write(fd, bytes([65 + i]) * 4096)
        yield from k.close(fd)
    # read everything back and verify
    results = []
    for i in range(n_files):
        fd = yield from k.open("/data/f%d" % i, OpenMode.READ)
        data = yield from k.read(fd, 1 << 20)
        yield from k.close(fd)
        results.append(bytes(data))
    # delete half
    for i in range(0, n_files, 2):
        yield from k.unlink("/data/f%d" % i)
    return results


@pytest.mark.parametrize("protocol", ["nfs", "snfs"])
@pytest.mark.parametrize("drop_rate", [0.02, 0.10])
def test_workload_correct_under_packet_loss(protocol, drop_rate):
    sim, k, export, network = build_lossy(protocol, drop_rate)
    results = drive(sim, churn_workload(k))
    for i, data in enumerate(results):
        assert data == bytes([65 + i]) * 4096 * 3, "file %d corrupted" % i
    assert network.stats.get("dropped") > 0  # loss genuinely happened
    # the transport retried (at least once, given the loss rate)
    # and the server's filesystem is internally consistent
    assert export.lfs.check() == []


@pytest.mark.parametrize("protocol", ["nfs", "snfs"])
def test_no_duplicate_side_effects_under_loss(protocol):
    """Creates and removes are not idempotent at the FS level; the
    dup-cache must prevent retransmitted ones from double-executing."""
    sim, k, export, network = build_lossy(protocol, drop_rate=0.15, seed=77)

    def scenario():
        yield from k.mkdir("/data/d")
        for i in range(6):
            fd = yield from k.open("/data/d/f%d" % i, OpenMode.WRITE, create=True)
            yield from k.write(fd, b"z")
            yield from k.close(fd)
        names = yield from k.readdir("/data/d")
        for i in range(6):
            yield from k.unlink("/data/d/f%d" % i)
        yield from k.rmdir("/data/d")
        leftover = yield from k.readdir("/data")
        return names, leftover

    names, leftover = drive(sim, scenario())
    assert names == ["f%d" % i for i in range(6)]
    assert "d" not in leftover
    assert export.lfs.check() == []


def test_snfs_consistency_machinery_survives_loss():
    """Two clients write-sharing over a lossy network: still zero
    stale reads (callbacks and write-backs are retried)."""
    sim = Simulator()
    network = Network(sim, NetworkConfig(drop_rate=0.05, seed=5))
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    SnfsServer(server_host, export)
    kernels = []
    for i in range(2):
        host = Host(sim, network, "client%d" % i, HostConfig.titan_client())
        client = SnfsClient("m%d" % i, host, "server")
        drive(sim, client.attach())
        host.kernel.mount("/data", client)
        kernels.append(host.kernel)

    def writer():
        fd = yield from kernels[0].open("/data/s", OpenMode.WRITE, create=True)
        yield from kernels[0].write(fd, b"FINAL" * 900)
        yield from kernels[0].close(fd)

    def reader():
        yield sim.timeout(20.0)
        fd = yield from kernels[1].open("/data/s", OpenMode.READ)
        data = yield from kernels[1].read(fd, 1 << 20)
        yield from kernels[1].close(fd)
        return bytes(data)

    wp = sim.spawn(writer())
    rp = sim.spawn(reader())
    from repro.sim import AllOf

    gate = AllOf(sim, [wp, rp])
    gate.defuse()
    sim.run_until(gate, limit=1e6)
    for proc in (wp, rp):
        if proc.exception is not None:
            proc.defuse()
            raise proc.exception
    assert rp.value == b"FINAL" * 900
