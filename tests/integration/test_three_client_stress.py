"""Three-client stress: randomized sharing patterns, verified data.

A torture test for the consistency machinery: three SNFS clients churn
a small set of shared files with randomized (but seeded) interleavings
of reads, writes, and whole-file rewrites, under locking discipline (a
writer finishes its rewrite before any verification read — the paper
guarantees consistency "provided that some other mechanism serializes
the reads and writes").  Every read must observe some complete
previously-written version, never a mix, and the final state must
match the last writer everywhere — including at the server after a
final sync.
"""

import random

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig
from repro.net import Network
from repro.sim import AllOf, Simulator
from repro.snfs import SnfsClient, SnfsServer


def build(n_clients=3):
    sim = Simulator()
    network = Network(sim)
    server_host = Host(sim, network, "server", HostConfig.titan_server())
    export = server_host.add_local_fs("/export", fsid="exportfs")
    server = SnfsServer(server_host, export)
    kernels = []
    mounts = []
    for i in range(n_clients):
        host = Host(sim, network, "client%d" % i, HostConfig.titan_client())
        client = SnfsClient("m%d" % i, host, "server")
        drive(sim, client.attach())
        host.kernel.mount("/data", client)
        host.update_daemon.start()
        kernels.append(host.kernel)
        mounts.append(client)
    return sim, kernels, mounts, export, server


def drive(sim, gen, limit=1e6):
    box = {}

    def wrapper():
        box["v"] = yield from gen

    proc = sim.spawn(wrapper())
    sim.run_until(proc, limit=limit)
    if proc.exception is not None:
        proc.defuse()
        raise proc.exception
    return box.get("v")


def _version_bytes(writer: int, round_no: int) -> bytes:
    stamp = ("w%02dr%03d" % (writer, round_no)).encode()
    return stamp * 600  # ~4.8 KB: spans two blocks


def test_three_clients_randomized_sharing():
    sim, kernels, mounts, export, server = build()
    rng = random.Random(2024)
    files = ["/data/s0", "/data/s1"]
    # ground truth: the last complete version written per file
    latest = {}
    violations = []

    def actor(idx):
        k = kernels[idx]
        for round_no in range(25):
            yield sim.timeout(rng.uniform(0.5, 3.0))
            path = rng.choice(files)
            if rng.random() < 0.4:
                # rewrite the whole file
                data = _version_bytes(idx, round_no)
                fd = yield from k.open(path, OpenMode.WRITE, create=True,
                                       truncate=True)
                yield from k.write(fd, data)
                yield from k.close(fd)
                latest[path] = data
            else:
                # read and check we saw a *complete* version
                try:
                    fd = yield from k.open(path, OpenMode.READ)
                except Exception:
                    continue  # not created yet
                data = yield from k.read(fd, 1 << 20)
                yield from k.close(fd)
                blob = bytes(data)
                if blob and not _is_complete_version(blob):
                    violations.append((sim.now, idx, path, blob[:24]))

    procs = [sim.spawn(actor(i)) for i in range(3)]
    gate = AllOf(sim, procs)
    gate.defuse()
    sim.run_until(gate, limit=1e6)
    for proc in procs:
        if proc.exception is not None:
            proc.defuse()
            raise proc.exception

    assert violations == [], violations[:3]

    # flush all clients, then check the server's final contents match
    # the globally-last writer of each file
    for mount in mounts:
        drive(sim, mount.sync())
    lfs = export.lfs
    for path, expected in latest.items():
        name = path.rsplit("/", 1)[1]
        inum = drive(sim, lfs.lookup(lfs.root_inum, name))
        chunks = []
        bno = 0
        while True:
            block = drive(sim, lfs.read_block(inum, bno))
            if not block:
                break
            chunks.append(block)
            bno += 1
        got = b"".join(chunks)[: lfs._attr(inum).size]
        assert got == expected, "server content diverged for %s" % path
    assert lfs.check() == []
    # the consistency machinery genuinely fired along the way
    from repro.snfs import SPROC

    server_host_stats = server.host.rpc.client_stats
    assert server_host_stats.get(SPROC.CALLBACK) > 0


def _is_complete_version(blob: bytes) -> bool:
    stamp = blob[:7]  # "wNNrMMM"
    if len(stamp) < 7 or not stamp.startswith(b"w"):
        return False
    return blob == stamp * 600
