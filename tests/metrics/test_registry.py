"""Tests for the unified MetricsRegistry and its instruments."""

import json

import pytest

from repro.metrics import Counter, Counters, Gauge, Histogram, MetricsRegistry, TimeSeries


def test_counter_labels_and_totals():
    c = Counter("rpc.retrans")
    c.inc(proc="nfs.read", endpoint="m1")
    c.inc(2, proc="nfs.read", endpoint="m1")
    c.inc(proc="nfs.write", endpoint="m1")
    assert c.get(proc="nfs.read", endpoint="m1") == 3
    assert c.get(endpoint="m1", proc="nfs.read") == 3  # order-insensitive
    assert c.get(proc="absent") == 0
    assert c.total() == 4


def test_gauge_set_add_get():
    g = Gauge("cache.dirty")
    g.set(5, host="c0")
    g.add(2, host="c0")
    g.set(1, host="c1")
    assert g.get(host="c0") == 7
    assert g.get(host="c1") == 1
    assert g.get(host="c2") == 0


def test_histogram_buckets_and_stats():
    h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v, proc="read")
    assert h.count(proc="read") == 4
    assert h.mean(proc="read") == pytest.approx(5.555 / 4)
    cell = h.as_dict()["proc=read"]
    assert cell["count"] == 4
    assert cell["min"] == 0.005
    assert cell["max"] == 5.0
    assert cell["buckets"] == [[0.01, 1], [0.1, 1], [1.0, 1], ["inf", 1]]


def test_histogram_empty_labels():
    h = Histogram("lat")
    assert h.count() == 0
    assert h.mean() == 0.0


def test_registry_create_or_fetch():
    reg = MetricsRegistry()
    a = reg.counter("x")
    assert reg.counter("x") is a
    assert reg.names() == ["x"]
    reg.gauge("g")
    reg.histogram("h")
    assert reg.names() == ["g", "h", "x"]


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_absorb_counters_bridges_legacy_objects():
    reg = MetricsRegistry()
    legacy = Counters()
    legacy.record("nfs.read", n=10)
    legacy.record("nfs.write", n=3)
    inst = reg.absorb_counters("rpc.calls", legacy, endpoint="m1")
    assert inst.get(op="nfs.read", endpoint="m1") == 10
    assert inst.get(op="nfs.write", endpoint="m1") == 3


def test_absorb_series_bridges_timeseries():
    reg = MetricsRegistry()
    series = TimeSeries("util")
    for t, v in ((5.0, 0.15), (10.0, 0.85), (15.0, 0.85)):
        series.append(t, v)
    inst = reg.absorb_series("server.cpu", series, host="server")
    assert inst.count(host="server") == 3
    assert inst.mean(host="server") == pytest.approx((0.15 + 0.85 + 0.85) / 3)


def test_as_dict_is_sorted_and_json_stable():
    reg = MetricsRegistry()
    reg.counter("zeta").inc(b="2", a="1")
    reg.counter("alpha").inc()
    reg.gauge("mid").set(3.0, k="v")
    d = reg.as_dict()
    assert list(d) == ["alpha", "mid", "zeta"]
    assert d["zeta"]["kind"] == "counter"
    assert d["zeta"]["values"] == {"a=1,b=2": 1}
    assert json.dumps(d, sort_keys=True) == json.dumps(reg.as_dict(), sort_keys=True)


def test_enable_metrics_on_simulator():
    from repro.sim import Simulator

    sim = Simulator()
    assert sim.metrics is None
    reg = sim.enable_metrics()
    assert sim.metrics is reg
    assert sim.enable_metrics() is reg  # idempotent


# -- per-instrument bucket overrides ------------------------------------------


def test_histogram_rebuckets_while_empty():
    reg = MetricsRegistry()
    # creation order between readers and writers is arbitrary: a reader
    # fetching with buckets=None must not pin the defaults
    default = reg.histogram("rpc.latency")
    fine = reg.histogram("rpc.latency", buckets=(0.001, 0.01, 0.1))
    assert fine is default
    assert fine.buckets == (0.001, 0.01, 0.1)
    # buckets=None never conflicts, even after the override
    assert reg.histogram("rpc.latency").buckets == (0.001, 0.01, 0.1)


def test_histogram_rebucket_with_data_raises():
    reg = MetricsRegistry()
    h = reg.histogram("rpc.latency", buckets=(0.001, 0.01, 0.1))
    h.observe(0.005, proc="nfs.read")
    with pytest.raises(ValueError):
        reg.histogram("rpc.latency", buckets=(1.0, 2.0))
    # same boundaries (any order) are not a conflict
    assert reg.histogram("rpc.latency", buckets=(0.1, 0.01, 0.001)) is h


def test_as_dict_reports_bucket_bounds():
    reg = MetricsRegistry()
    h = reg.histogram("rpc.latency", buckets=(0.001, 0.01, 0.1))
    h.observe(0.002)
    d = reg.as_dict()
    # self-describing: consumers read the boundaries from the export
    assert d["rpc.latency"]["buckets"] == [0.001, 0.01, 0.1]


def test_rpc_latency_uses_finer_buckets():
    from repro.net.rpc import RPC_LATENCY_BUCKETS

    # sub-millisecond resolution at the low end for LAN-scale RPCs
    assert RPC_LATENCY_BUCKETS[0] < 0.001
    assert list(RPC_LATENCY_BUCKETS) == sorted(RPC_LATENCY_BUCKETS)
