"""Tests for utilization sampling and table rendering."""

import pytest

from repro.host import Cpu
from repro.metrics import (
    TimeSeries,
    UtilizationSampler,
    format_series_table,
    format_strip_chart,
    format_table,
)
from repro.sim import Simulator


# -- TimeSeries -----------------------------------------------------------


def test_timeseries_stats():
    ts = TimeSeries("x")
    ts.append(1.0, 0.5)
    ts.append(2.0, 1.5)
    assert ts.mean() == pytest.approx(1.0)
    assert ts.maximum() == 1.5
    assert len(ts) == 2
    assert ts.values() == [0.5, 1.5]
    assert ts.times() == [1.0, 2.0]


def test_timeseries_integral():
    ts = TimeSeries()
    ts.append(2.0, 1.0)  # width 2 x 1.0
    ts.append(4.0, 0.5)  # width 2 x 0.5
    assert ts.integral() == pytest.approx(3.0)


def test_empty_timeseries():
    ts = TimeSeries()
    assert ts.mean() == 0.0
    assert ts.maximum() == 0.0
    assert ts.integral() == 0.0


def test_time_mean_weights_by_interval():
    # one sample covering 9 s at 1.0, one covering 1 s at 0.0: the
    # sample-weighted mean says 0.5, the time-weighted mean 0.9
    ts = TimeSeries()
    ts.append(9.0, 1.0)
    ts.append(10.0, 0.0)
    assert ts.mean() == pytest.approx(0.5)
    assert ts.time_mean() == pytest.approx(0.9)


def test_time_mean_equals_mean_for_even_spacing():
    ts = TimeSeries()
    for i, v in enumerate((0.2, 0.4, 0.6, 0.8)):
        ts.append(5.0 * (i + 1), v)
    assert ts.time_mean() == pytest.approx(ts.mean())


def test_time_mean_window_and_empty():
    ts = TimeSeries()
    assert ts.time_mean() == 0.0
    ts.append(105.0, 1.0)
    ts.append(110.0, 0.5)
    # re-zeroed window: 5 s at 1.0 + 5 s at 0.5 over 10 s
    assert ts.time_mean(t0=100.0) == pytest.approx(0.75)


def test_integral_window_start_not_overcharged():
    # a sampler started at t=100 must not charge its first sample for
    # the whole [0, 105) span
    ts = TimeSeries()
    ts.append(105.0, 1.0)
    ts.append(110.0, 0.5)
    assert ts.integral(t0=100.0) == pytest.approx(1.0 * 5 + 0.5 * 5)
    # legacy default (t0=0) keeps the historical behavior
    assert ts.integral() == pytest.approx(1.0 * 105 + 0.5 * 5)


def test_integral_truncates_at_t1():
    ts = TimeSeries()
    ts.append(2.0, 1.0)
    ts.append(4.0, 0.5)
    assert ts.integral(t1=3.0) == pytest.approx(1.0 * 2 + 0.5 * 1)
    assert ts.integral(t0=1.0, t1=3.0) == pytest.approx(1.0 * 1 + 0.5 * 1)
    # window entirely before / after the data
    assert ts.integral(t0=10.0, t1=20.0) == 0.0


def test_window_excludes_left_edge_includes_right():
    ts = TimeSeries("u")
    for t in (5.0, 10.0, 15.0, 20.0):
        ts.append(t, t / 100.0)
    w = ts.window(5.0, 15.0)
    assert w.name == "u"
    assert w.points == [(10.0, 0.10), (15.0, 0.15)]
    assert ts.window(100.0, 200.0).points == []


def test_shifted_rezeroes_a_window():
    ts = TimeSeries()
    ts.append(105.0, 1.0)
    ts.append(110.0, 0.5)
    w = ts.window(100.0, 110.0).shifted(-100.0)
    assert w.points == [(5.0, 1.0), (10.0, 0.5)]
    # the original is untouched
    assert ts.points[0] == (105.0, 1.0)


# -- UtilizationSampler ------------------------------------------------------


def test_sampler_measures_cpu_busy_fraction():
    sim = Simulator()
    cpu = Cpu(sim)
    sampler = UtilizationSampler(sim, cpu.busy_time, interval=1.0)

    def burner():
        # busy 0.5 s of each 1 s interval, for 4 intervals
        for _ in range(4):
            yield from cpu.consume(0.5)
            yield sim.timeout(0.5)

    proc = sim.spawn(burner())
    sim.run_until(proc, limit=100)
    sampler.stop()
    values = sampler.series.values()
    assert len(values) >= 3
    for v in values[:3]:
        assert v == pytest.approx(0.5, abs=0.05)


def test_sampler_idle_cpu_reads_zero():
    sim = Simulator()
    cpu = Cpu(sim)
    sampler = UtilizationSampler(sim, cpu.busy_time, interval=1.0)

    def idle():
        yield sim.timeout(3.5)

    proc = sim.spawn(idle())
    sim.run_until(proc, limit=100)
    sampler.stop()
    assert all(v == 0.0 for v in sampler.series.values())


def test_sampler_counts_clamped_samples():
    sim = Simulator()
    sim.enable_metrics()
    busy = [0.0]
    sampler = UtilizationSampler(sim, lambda: busy[0], interval=1.0, name="cpu0")

    def driver():
        # over-unity delta: 2 s of "busy" reported inside a 1 s interval
        yield sim.timeout(0.5)
        busy[0] += 2.0
        yield sim.timeout(1.5)

    proc = sim.spawn(driver())
    sim.run_until(proc, limit=100)
    sampler.stop()
    assert sampler.clamps == 1
    # the sample itself is still clamped into [0, 1]
    assert all(0.0 <= v <= 1.0 for v in sampler.series.values())
    # and the registry surfaces it for the obs report
    clamped = sim.metrics.counter("sampler.clamped").as_dict()
    assert clamped == {"name=cpu0": 1}


def test_sampler_clean_run_counts_no_clamps():
    sim = Simulator()
    cpu = Cpu(sim)
    sampler = UtilizationSampler(sim, cpu.busy_time, interval=1.0)

    def burner():
        for _ in range(3):
            yield from cpu.consume(0.5)
            yield sim.timeout(0.5)

    proc = sim.spawn(burner())
    sim.run_until(proc, limit=100)
    sampler.stop()
    assert sampler.clamps == 0


# -- report formatting -----------------------------------------------------


def test_format_table_alignment():
    out = format_table(
        ["Name", "Value"],
        [["alpha", 1], ["b", 22.5]],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1] and "Value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "alpha" in lines[3]
    assert "22.5" in lines[4]


def test_format_table_numbers_right_aligned():
    out = format_table(["N", "V"], [["x", 1], ["yy", 100]])
    lines = out.splitlines()
    # the numeric column's digits end at the same offset
    assert lines[-1].rstrip().endswith("100")
    assert lines[-2].rstrip().endswith("1")
    assert len(lines[-1].rstrip()) >= len(lines[-2].rstrip())


def test_format_strip_chart_bars_scale():
    out = format_strip_chart([(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)], width=10)
    lines = out.splitlines()
    assert lines[0].count("#") == 0
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5


def test_format_strip_chart_empty():
    assert "empty" in format_strip_chart([], title="t")


def test_format_series_table():
    out = format_series_table(
        [("a", [(0.0, 1.0), (5.0, 2.0)]), ("b", [(0.0, 3.0)])],
        title="S",
    )
    assert "a" in out and "b" in out
    assert "1.000" in out and "3.000" in out


def test_series_to_csv_merges_timestamps():
    from repro.metrics import series_to_csv

    csv = series_to_csv([("a", [(0.0, 1.0), (5.0, 2.0)]), ("b", [(5.0, 9.0)])])
    lines = csv.strip().splitlines()
    assert lines[0] == "t,a,b"
    assert lines[1] == "0,1,"
    assert lines[2] == "5,2,9"


def test_series_to_csv_empty():
    from repro.metrics import series_to_csv

    assert series_to_csv([]) == "t\n"
