"""Tests for the Counters measurement primitive."""

import pytest

from repro.metrics import Counters


def test_record_and_get():
    c = Counters()
    c.record("read")
    c.record("read")
    c.record("write", n=5)
    assert c.get("read") == 2
    assert c.get("write") == 5
    assert c.get("missing") == 0


def test_total_all_and_subset():
    c = Counters()
    c.record("a", n=1)
    c.record("b", n=2)
    c.record("c", n=3)
    assert c.total() == 6
    assert c.total(["a", "c"]) == 4
    assert c.total(["nope"]) == 0


def test_names_sorted():
    c = Counters()
    c.record("zeta")
    c.record("alpha")
    assert c.names() == ["alpha", "zeta"]


def test_as_dict_is_a_copy():
    c = Counters()
    c.record("x")
    d = c.as_dict()
    d["x"] = 99
    assert c.get("x") == 1


def test_times_not_kept_by_default():
    c = Counters()
    c.record("op", t=1.5)
    assert c.times("op") == []


def test_times_kept_when_enabled():
    c = Counters(keep_times=True)
    c.record("op", t=1.5)
    c.record("op", t=2.5)
    c.record("other", t=9.0)
    assert c.times("op") == [1.5, 2.5]
    assert c.all_times() == [(1.5, "op"), (2.5, "op"), (9.0, "other")]


def test_rate_series_buckets():
    c = Counters(keep_times=True)
    for t in (0.1, 0.2, 0.3, 5.5, 5.6):
        c.record("op", t=t)
    series = c.rate_series("op", bucket=5.0, t_end=10.0)
    assert series == [(0.0, 3 / 5.0), (5.0, 2 / 5.0)]


def test_rate_series_empty():
    c = Counters(keep_times=True)
    assert c.rate_series("op", bucket=1.0) == [(0.0, 0.0)]


def test_reset_clears_everything():
    c = Counters(keep_times=True)
    c.record("op", t=1.0)
    c.reset()
    assert c.get("op") == 0
    assert c.times("op") == []


def test_snapshot_diff():
    c = Counters()
    c.record("a", n=3)
    snap = c.as_dict()
    c.record("a", n=2)
    c.record("b", n=1)
    assert c.snapshot_diff(snap) == {"a": 2, "b": 1}


def test_repr_readable():
    c = Counters()
    c.record("x")
    assert "x=1" in repr(c)


def test_timed_record_without_t_defaults_to_sim_clock():
    from repro.sim import Simulator

    sim = Simulator()
    c = Counters(keep_times=True, sim=sim)

    def work():
        yield sim.timeout(2.5)
        c.record("op")  # no t: should stamp sim.now

    proc = sim.spawn(work())
    sim.run_until(proc, limit=100)
    assert c.times("op") == [2.5]


def test_attach_sim_enables_clock_default():
    from repro.sim import Simulator

    sim = Simulator()
    c = Counters(keep_times=True)
    assert c.attach_sim(sim) is c
    c.record("op")
    assert c.times("op") == [0.0]


def test_timed_record_without_t_or_sim_warns():
    from repro.metrics import CountersTimestampWarning

    c = Counters(keep_times=True)
    with pytest.warns(CountersTimestampWarning):
        c.record("op")
    # the count still lands; only the time log has the gap
    assert c.get("op") == 1
    assert c.times("op") == []


def test_untimed_counters_never_warn():
    import warnings

    c = Counters()  # keep_times=False
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        c.record("op")
    assert c.get("op") == 1
