"""Tests for the two write-back policies (§4.2.3)."""

import pytest

from repro.fs import OpenMode
from repro.host import Host, HostConfig, UpdateDaemon
from repro.net import Network


def make_host(runner, policy):
    cfg = HostConfig(update_policy=policy, update_interval=30.0)
    h = Host(runner.sim, Network(runner.sim), "m", cfg)
    h.add_local_fs("/", fsid="rootfs")
    return h


def test_all_policy_flushes_everything_each_tick(runner):
    host = make_host(runner, "all")
    host.update_daemon.start()
    k = host.kernel

    def scenario():
        # dirty a block just before the 30 s tick
        yield runner.sim.timeout(29.0)
        fd = yield from k.open("/young", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"young data")
        yield from k.close(fd)
        assert host.cache.dirty_count() == 1
        yield runner.sim.timeout(2.0)  # tick at t=30 flushes even 1 s-old data
        return host.cache.dirty_count()

    assert runner.run(scenario()) == 0


def test_age_policy_spares_young_blocks(runner):
    host = make_host(runner, "age")
    host.update_daemon.start()
    k = host.kernel

    def scenario():
        fd = yield from k.open("/old", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"old data")
        yield from k.close(fd)
        yield runner.sim.timeout(25.0)
        fd = yield from k.open("/young", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"young data")
        yield from k.close(fd)
        assert host.cache.dirty_count() == 2
        # at the t=37.5 tick the old block is ~37 s dirty -> flushed;
        # the young one is ~12 s -> spared
        yield runner.sim.timeout(15.0)
        return host.cache.dirty_count()

    assert runner.run(scenario()) == 1  # only the young block remains


def test_age_policy_eventually_flushes_everything(runner):
    host = make_host(runner, "age")
    host.update_daemon.start()
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"data")
        yield from k.close(fd)
        yield runner.sim.timeout(45.0)
        return host.cache.dirty_count()

    assert runner.run(scenario()) == 0


def test_unknown_policy_rejected(runner):
    with pytest.raises(ValueError):
        UpdateDaemon(runner.sim, None, policy="sometimes")


def test_daemon_start_stop_idempotent(runner):
    host = make_host(runner, "all")
    host.update_daemon.start()
    host.update_daemon.start()  # second start: no-op
    assert host.update_daemon.running
    host.update_daemon.stop()
    host.update_daemon.stop()  # second stop: no-op
    assert not host.update_daemon.running
