"""Tests for host substrate: CPU, async pool, update daemon, crash."""

import pytest

from repro.fs import OpenMode
from repro.host import AsyncPool, Cpu, Host, HostConfig
from repro.net import Network
from repro.sim import Simulator


def test_cpu_consume_advances_time(runner):
    cpu = Cpu(runner.sim, speed=1.0)
    runner.run(cpu.consume(0.5))
    assert runner.sim.now == pytest.approx(0.5)
    assert cpu.busy_time() == pytest.approx(0.5)


def test_cpu_speed_scales_cost(runner):
    cpu = Cpu(runner.sim, speed=2.0)
    runner.run(cpu.consume(1.0))
    assert runner.sim.now == pytest.approx(0.5)


def test_cpu_contention_serializes(runner):
    cpu = Cpu(runner.sim)
    done = []

    def burner(tag):
        yield from cpu.consume(1.0)
        done.append((tag, runner.sim.now))

    runner.run_all(burner("a"), burner("b"))
    assert done[0][1] == pytest.approx(1.0)
    assert done[1][1] == pytest.approx(2.0)


def test_cpu_zero_cost_is_free(runner):
    cpu = Cpu(runner.sim)
    runner.run(cpu.consume(0.0))
    assert runner.sim.now == 0.0


def test_cpu_rejects_negative():
    sim = Simulator()
    cpu = Cpu(sim)
    with pytest.raises(ValueError):
        list(cpu.consume(-1))
    with pytest.raises(ValueError):
        Cpu(sim, speed=0)


def test_async_pool_runs_work(runner):
    pool = AsyncPool(runner.sim, n_workers=2)
    results = []

    def work(tag):
        yield runner.sim.timeout(0.1)
        results.append(tag)
        return tag

    def scenario():
        ev1 = pool.submit(lambda: work("a"), key="f")
        ev2 = pool.submit(lambda: work("b"), key="f")
        value = yield ev1
        yield ev2
        return value

    assert runner.run(scenario()) == "a"
    assert sorted(results) == ["a", "b"]


def test_async_pool_concurrency_limited(runner):
    pool = AsyncPool(runner.sim, n_workers=2)
    done_times = []

    def work():
        yield runner.sim.timeout(1.0)
        done_times.append(runner.sim.now)

    def scenario():
        events = [pool.submit(lambda: work()) for _ in range(4)]
        for ev in events:
            yield ev

    runner.run(scenario())
    # 4 jobs, 2 workers, 1 s each: finish at 1,1,2,2
    assert done_times == [1.0, 1.0, 2.0, 2.0]


def test_async_pool_drain_waits_for_key(runner):
    pool = AsyncPool(runner.sim, n_workers=4)
    log = []

    def work(tag, dur):
        yield runner.sim.timeout(dur)
        log.append(tag)

    def scenario():
        pool.submit(lambda: work("slow-f", 2.0), key="f")
        pool.submit(lambda: work("other-g", 5.0), key="g")
        yield from pool.drain("f")
        return runner.sim.now

    t = runner.run(scenario())
    assert t == pytest.approx(2.0)
    assert "slow-f" in log and "other-g" not in log


def test_async_pool_drain_empty_key_immediate(runner):
    pool = AsyncPool(runner.sim, n_workers=1)

    def scenario():
        yield from pool.drain("nothing")
        return runner.sim.now

    assert runner.run(scenario()) == 0.0


def test_async_pool_error_propagates_to_waiter(runner):
    pool = AsyncPool(runner.sim, n_workers=1)

    def bad():
        yield runner.sim.timeout(0.1)
        raise ValueError("boom")

    def scenario():
        ev = pool.submit(lambda: bad())
        with pytest.raises(ValueError):
            yield ev

    runner.run(scenario())


def test_async_pool_unobserved_error_does_not_crash_sim(runner):
    pool = AsyncPool(runner.sim, n_workers=1)

    def bad():
        yield runner.sim.timeout(0.1)
        raise ValueError("ignored")

    def scenario():
        pool.submit(lambda: bad())
        yield runner.sim.timeout(1.0)

    runner.run(scenario())  # should not raise


def test_host_crash_loses_cache_and_fds(runner):
    net = Network(runner.sim)
    host = Host(runner.sim, net, "h1")
    host.add_local_fs("/")
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"unsaved data")
        assert host.cache.dirty_count() == 1
        host.crash()
        assert host.cache.dirty_count() == 0
        assert k.open_fd_count() == 0
        host.reboot(restart_update=False)
        # the file exists (metadata was synchronous) but the delayed-write
        # data never reached the disk, so the file reverts to empty
        attr = yield from k.stat("/f")
        return attr.size

    size = runner.run(scenario())
    assert size == 0


def test_host_crash_preserves_flushed_data(runner):
    net = Network(runner.sim)
    host = Host(runner.sim, net, "h1")
    host.add_local_fs("/")
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"saved")
        yield from k.fsync(fd)
        yield from k.close(fd)
        host.crash()
        host.reboot(restart_update=False)
        fd = yield from k.open("/f", OpenMode.READ)
        data = yield from k.read(fd, 100)
        yield from k.close(fd)
        return data

    assert runner.run(scenario()) == b"saved"


def test_two_hosts_rpc_through_network(runner):
    net = Network(runner.sim)
    h1 = Host(runner.sim, net, "client-host")
    h2 = Host(runner.sim, net, "server-host")

    def service(src, x):
        yield runner.sim.timeout(0.001)
        return x * 2

    h2.rpc.register("double", service)

    def scenario():
        value = yield from h1.rpc.call("server-host", "double", 21)
        return value

    assert runner.run(scenario()) == 42
