"""Edge-case tests for the kernel syscall layer."""

import pytest

from repro.fs import (
    InvalidArgument,
    NoSuchFile,
    NotADirectory,
    NotOpen,
    OpenMode,
    ReadOnly,
)
from repro.host import Host
from repro.net import Network


@pytest.fixture
def host(runner):
    h = Host(runner.sim, Network(runner.sim), "m")
    h.add_local_fs("/", fsid="rootfs")
    return h


def test_mount_requires_absolute_prefix(runner, host):
    from repro.vfs import LocalMount

    with pytest.raises(InvalidArgument):
        host.kernel.mount("relative", host.kernel.mount_by_id("rootfs"))


def test_duplicate_mount_point_rejected(runner, host):
    fs = host.kernel.mount_by_id("rootfs")
    with pytest.raises(InvalidArgument):
        host.kernel.mount("/", fs)


def test_longest_prefix_mount_wins(runner, host):
    host.add_local_fs("/deep/nested", fsid="nestedfs", disk_name="d2")
    fs, comps = host.kernel.resolve_mount("/deep/nested/file")
    assert fs.mount_id == "nestedfs"
    assert comps == ["file"]
    fs, comps = host.kernel.resolve_mount("/deep/other")
    assert fs.mount_id == "rootfs"
    assert comps == ["deep", "other"]


def test_relative_path_rejected(runner, host):
    with pytest.raises(InvalidArgument):
        host.kernel.resolve_mount("not/absolute")


def test_path_normalization(runner, host):
    k = host.kernel

    def scenario():
        yield from k.mkdir("/d")
        fd = yield from k.open("/d//f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        attr = yield from k.stat("//d///f")
        return attr

    assert runner.run(scenario()) is not None


def test_read_on_bad_fd(runner, host):
    with pytest.raises(NotOpen):
        runner.run(host.kernel.read(99, 10))


def test_write_on_readonly_fd(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        fd = yield from k.open("/f", OpenMode.READ)
        with pytest.raises(ReadOnly):
            yield from k.write(fd, b"nope")
        yield from k.close(fd)

    runner.run(scenario())


def test_fd_not_reusable_after_close(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        with pytest.raises(NotOpen):
            yield from k.read(fd, 1)

    runner.run(scenario())


def test_lseek_negative_rejected(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        with pytest.raises(InvalidArgument):
            k.lseek(fd, -1)
        yield from k.close(fd)

    runner.run(scenario())


def test_open_trunc_requires_write_mode(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        with pytest.raises(InvalidArgument):
            yield from k.open("/f", OpenMode.READ, truncate=True)

    runner.run(scenario())


def test_cross_filesystem_rename_rejected(runner, host):
    host.add_local_fs("/other", fsid="otherfs", disk_name="d2")
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        with pytest.raises(InvalidArgument):
            yield from k.rename("/f", "/other/f")

    runner.run(scenario())


def test_namei_through_file_component_fails(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/plainfile", OpenMode.WRITE, create=True)
        yield from k.close(fd)
        with pytest.raises(NotADirectory):
            yield from k.stat("/plainfile/child")

    runner.run(scenario())


def test_open_nonexistent_without_create(runner, host):
    with pytest.raises(NoSuchFile):
        runner.run(host.kernel.open("/ghost", OpenMode.READ))


def test_no_mount_for_path(runner):
    h = Host(runner.sim, Network(runner.sim), "bare")
    with pytest.raises(NoSuchFile):
        h.kernel.resolve_mount("/anything")


def test_open_fd_count_tracks(runner, host):
    k = host.kernel

    def scenario():
        assert k.open_fd_count() == 0
        fd1 = yield from k.open("/a", OpenMode.WRITE, create=True)
        fd2 = yield from k.open("/b", OpenMode.WRITE, create=True)
        assert k.open_fd_count() == 2
        yield from k.close(fd1)
        yield from k.close(fd2)
        assert k.open_fd_count() == 0

    runner.run(scenario())


def test_unmount_all_flushes(runner, host):
    k = host.kernel

    def scenario():
        fd = yield from k.open("/f", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"dirty")
        yield from k.close(fd)
        assert host.cache.dirty_count() == 1
        yield from k.unmount_all()
        assert host.cache.dirty_count() == 0
        assert k.mounts() == []

    runner.run(scenario())
