#!/usr/bin/env python
"""Trace replay: run your own workload over every protocol.

Synthesizes a BSD-trace-flavoured activity trace (small files, short
lifetimes, read-mostly — the §2.1 profile), replays it unchanged over
NFS and SNFS testbeds, and compares the RPC traffic; then shows the
trace format itself, plus a packet trace of the first moments of the
run (tcpdump for the simulated LAN).

Run:  python examples/trace_replay.py
"""

from repro import build_testbed
from repro.net import NetworkConfig
from repro.workloads import TraceReplayer, dump_trace, synthesize_trace


def replay_over(protocol, trace):
    bed = build_testbed(
        protocol,
        remote_tmp=True,
        network_config=NetworkConfig(trace_packets=8),
    )
    bed.client.rpc.client_stats.reset()
    replayer = TraceReplayer(bed.client.kernel, trace)
    bed.run(replayer.run())
    assert replayer.errors == [], replayer.errors
    return bed, replayer


def main():
    trace = synthesize_trace(root="/data", n_files=25, duration=60.0,
                             mean_lifetime=8.0)
    print("synthesized %d trace ops over %.0f s; first lines:\n" %
          (len(trace), trace.duration()))
    print("\n".join(dump_trace(trace).splitlines()[:6]))
    print("  ...")
    print()

    results = {}
    for protocol in ("nfs", "snfs"):
        bed, replayer = replay_over(protocol, trace)
        stats = bed.client.rpc.client_stats
        results[protocol] = stats.as_dict()
        total = stats.total()
        writes = stats.get("%s.write" % protocol)
        reads = stats.get("%s.read" % protocol)
        print("%-5s: %5d RPCs total (%d reads, %d writes)"
              % (protocol.upper(), total, reads, writes))
        if protocol == "nfs":
            sample_trace = bed.network.packet_trace()

    nfs_writes = results["nfs"]["nfs.write"]
    snfs_writes = results["snfs"].get("snfs.write", 0)
    print()
    print("short-lived files (8 s mean lifetime vs the 30 s write-delay "
          "window): SNFS sent %d write RPCs to NFS's %d"
          % (snfs_writes, nfs_writes))
    print()
    print("packet trace (first %d packets of the NFS run):" % len(sample_trace))
    for t, src, dst, kind, size in sample_trace:
        print("  %8.4f  %-7s -> %-7s %-22s %5d B" % (t, src, dst, kind, size))


if __name__ == "__main__":
    main()
