#!/usr/bin/env python
"""Block-granularity consistency: the §2.5 design the paper couldn't run.

Kent's scheme maintains consistency per *block* rather than per file:
a client acquires a shared or exclusive token for each block it
touches, and the server revokes/downgrades tokens when another client
wants access.  Where SNFS turns caching off for a write-shared file,
block tokens let two clients each keep delayed-write caches of their
own disjoint pages — the database pattern.

This example runs the same two-client page-update workload over SNFS
and over the block scheme and compares the traffic ("this system
required special hardware to implement the consistency protocol with
sufficient performance" — ours just needs RPCs).

Run:  python examples/block_tokens.py
"""

from repro.experiments import block_sharing_table


def main():
    table, results = block_sharing_table(rounds=30)
    print(table)
    print()
    snfs = results["snfs"]
    kent = results["kent"]
    print("SNFS marks the file WRITE_SHARED and disables caching:")
    print("  every page update and verification read is a synchronous")
    print("  server RPC -> %d data RPCs, %.1f s."
          % (snfs.data_rpcs, snfs.elapsed))
    print()
    print("Block tokens give each client exclusive ownership of the")
    print("  pages it writes: the writes stay delayed in its cache and")
    print("  its reads are cache hits -> %d data RPCs, %.1f s."
          % (kent.data_rpcs, kent.elapsed))
    print()
    print("Same file, genuinely write-shared, %.1fx less traffic — the"
          % (snfs.total_rpcs / max(1, kent.total_rpcs)))
    print("  trade-off is per-block server state (NFSv4 rediscovered")
    print("  this design as delegations).")


if __name__ == "__main__":
    main()
