#!/usr/bin/env python
"""Consistency demo: watch NFS serve stale data while SNFS stays correct.

Two client machines write-share one file: a writer updates a
sequence-numbered record every 4 seconds while a reader polls it every
second.  Under NFS the reader trusts its cache between attribute
probes and reports old sequence numbers; under SNFS the server's
callback machinery disables caching for the write-shared file and
every read is correct.  (This is §2.3 of the paper made runnable.)

Run:  python examples/consistency_demo.py
"""

from repro import consistency_table, run_consistency


def main():
    table, outcomes = consistency_table(protocols=("nfs", "rfs", "snfs"))
    print(table)
    print()

    nfs = next(o for o in outcomes if o.protocol == "nfs")
    print("A sample of what the NFS reader actually observed:")
    print("  %8s  %10s  %10s  %s" % ("time", "saw seq", "latest", ""))
    shown = 0
    for t, seen, latest in nfs.result.observations:
        marker = "  <-- STALE" if seen < latest else ""
        if marker or shown % 8 == 0:
            print("  %8.1f  %10d  %10d%s" % (t, seen, latest, marker))
        shown += 1

    print()
    snfs = next(o for o in outcomes if o.protocol == "snfs")
    print("SNFS reader: %d reads, %d stale — the consistency protocol "
          "guarantees no client ever sees an inconsistent cached copy."
          % (snfs.total, snfs.stale))


if __name__ == "__main__":
    main()
