#!/usr/bin/env python
"""The temporary-file experiment: the external sort (§5.3-5.4).

Reproduces Table 5-3 (elapsed time per input size per mount type),
then Table 5-5/5-6's punchline: with the periodic update sync disabled
("infinite write-delay"), SNFS matches local-disk performance and does
almost no write RPCs at all — short-lived temporary files live and die
entirely in the client cache.

Run:  python examples/sort_benchmark.py        (takes ~20 s)
"""

from repro import run_sort, sort_table_5_3
from repro.experiments import SORT_SIZES, sort_table_5_6


def main():
    table3, runs = sort_table_5_3()
    print(table3)
    big = SORT_SIZES[-1]
    nfs = next(r for r in runs if r.protocol == "nfs" and r.input_bytes == big)
    snfs = next(r for r in runs if r.protocol == "snfs" and r.input_bytes == big)
    print()
    print("largest input: SNFS completes %.1fx faster than NFS "
          "(the paper: approximately twice as fast)"
          % (nfs.result.elapsed / snfs.result.elapsed))
    print("every output was verified to be correctly sorted: %s"
          % all(r.output_ok for r in runs))
    print()

    table6, _runs6 = sort_table_5_6()
    print(table6)
    print()

    no_update = run_sort("snfs", big, update_enabled=False)
    local = run_sort("local", big, update_enabled=False)
    print("with infinite write-delay: SNFS %.0f s vs local disk %.0f s — "
          "\"SNFS matches or beats local-disk performance\""
          % (no_update.result.elapsed, local.result.elapsed))


if __name__ == "__main__":
    main()
