#!/usr/bin/env python
"""Run the paper's headline experiment: the Andrew benchmark, five ways.

Reproduces Table 5-1 (elapsed time per phase across local disk, NFS,
and SNFS with /tmp local or remote) and Table 5-2 (RPC operation
counts), then prints the SNFS-vs-NFS comparisons the paper reports in
§5.2.

Run:  python examples/andrew_benchmark.py        (takes ~10 s)
"""

from repro import andrew_table_5_1, andrew_table_5_2


def main():
    table1, runs1 = andrew_table_5_1()
    print(table1)
    print()

    by_label = {r.label: r for r in runs1}
    nfs = by_label["NFS tmp-remote"]
    snfs = by_label["SNFS tmp-remote"]
    copy_win = 1 - (snfs.result.phase_seconds["Copy"]
                    / nfs.result.phase_seconds["Copy"])
    make_win = 1 - (snfs.result.phase_seconds["Make"]
                    / nfs.result.phase_seconds["Make"])
    total_win = 1 - snfs.result.total / nfs.result.total
    print("SNFS vs NFS (tmp remote): Copy %.0f%% faster, Make %.0f%% "
          "faster, whole benchmark %.0f%% faster"
          % (100 * copy_win, 100 * make_win, 100 * total_win))
    print("(the paper: ~25% on Copy, 20-30% on Make, 15-20% overall)")
    print()

    table2, runs2 = andrew_table_5_2()
    print(table2)
    print()

    nfs_rows = next(r for r in runs2 if r.label == "NFS tmp-remote").rpc_rows
    snfs_rows = next(r for r in runs2 if r.label == "SNFS tmp-remote").rpc_rows
    data_nfs = nfs_rows["read"] + nfs_rows["write"]
    data_snfs = snfs_rows["read"] + snfs_rows["write"]
    print("data-transfer RPCs (tmp remote): NFS %d vs SNFS %d "
          "(%.0f%% fewer; the paper reports 42%% fewer)"
          % (data_nfs, data_snfs, 100 * (1 - data_snfs / data_nfs)))
    print("lookups are %.0f%% of all NFS calls (the paper: roughly half)"
          % (100 * nfs_rows["lookup"] / nfs_rows["total"]))


if __name__ == "__main__":
    main()
