#!/usr/bin/env python
"""Server crash recovery: the §2.4 design, implemented and demonstrated.

The paper describes (but did not build) SNFS crash recovery: the
clients together know who is caching what, so a rebooted server can
reconstruct its state table from them, refusing state changes until
recovery completes.  This example crashes the server mid-workload with
delayed writes outstanding, reboots it, and shows the client recover
transparently — the dirty data survives in client memory and reaches
the server intact.

Run:  python examples/crash_recovery.py
"""

from repro import OpenMode, build_testbed


def main():
    bed = build_testbed("snfs", remote_tmp=False)
    k = bed.client.kernel
    server = bed.server

    def workload():
        # write a file; the data stays dirty in the client cache
        fd = yield from k.open("/data/journal", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"entry 1: before the crash\n" * 200)
        print("t=%6.2f  wrote %d dirty blocks (still client-side)"
              % (bed.sim.now, bed.client.cache.dirty_count()))

        # disaster strikes
        server.crash()
        print("t=%6.2f  SERVER CRASHED (state table lost: %d entries)"
              % (bed.sim.now, len(server.state)))
        yield bed.sim.timeout(2.0)
        server.reboot()
        print("t=%6.2f  server rebooted, grace period %.0f s begins"
              % (bed.sim.now, server.grace_period))

        # keep working: the write is local; the fsync forces RPCs, which
        # bounce with ServerRecovering until the client reasserts state
        yield from k.write(fd, b"entry 2: after the crash\n" * 200)
        t0 = bed.sim.now
        yield from k.fsync(fd)
        print("t=%6.2f  fsync completed after %.1f s (reopen + grace wait "
              "were transparent)" % (bed.sim.now, bed.sim.now - t0))
        print("          state table rebuilt: %d entries" % len(server.state))
        yield from k.close(fd)

        # prove the data made it intact
        fd = yield from k.open("/data/journal", OpenMode.READ)
        data = yield from k.read(fd, 1 << 20)
        yield from k.close(fd)
        expected = b"entry 1: before the crash\n" * 200 + b"entry 2: after the crash\n" * 200
        print("          journal intact after recovery: %s"
              % (bytes(data) == expected))

    bed.run(workload())


if __name__ == "__main__":
    main()
