#!/usr/bin/env python
"""Quickstart: a client and a Spritely NFS server, end to end.

Builds a two-machine testbed (one client, one SNFS server on a
simulated 10 Mbit/s LAN), runs a small workload through the client's
syscall layer, and shows the cache-consistency machinery at work:
delayed writes, the server state table, and delete-before-writeback.

Run:  python examples/quickstart.py
"""

from repro import OpenMode, build_testbed
from repro.snfs import SPROC


def main():
    # One client + one server; /data is an SNFS mount, /tmp is a second
    # export from the same server (a "diskless workstation" setup).
    bed = build_testbed("snfs", remote_tmp=True)
    k = bed.client.kernel

    def workload():
        # --- delayed writes -------------------------------------------------
        fd = yield from k.open("/data/report.txt", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"Sprite consistency, NFS protocol.\n" * 100)
        yield from k.close(fd)
        print("after close: %d dirty blocks still cached client-side"
              % bed.client.cache.dirty_count())
        print("write RPCs so far: %d (the close did not flush!)"
              % bed.client.rpc.client_stats.get(SPROC.WRITE))

        # --- the cache survives the close ------------------------------------
        fd = yield from k.open("/data/report.txt", OpenMode.READ)
        data = yield from k.read(fd, 1 << 20)
        yield from k.close(fd)
        print("reread %d bytes with %d read RPCs (all cache hits)"
              % (len(data), bed.client.rpc.client_stats.get(SPROC.READ)))

        # --- delete-before-writeback -----------------------------------------
        fd = yield from k.open("/tmp/scratch", OpenMode.WRITE, create=True)
        yield from k.write(fd, b"x" * 65536)
        yield from k.close(fd)
        yield from k.unlink("/tmp/scratch")
        print("scratch file deleted: %d delayed writes cancelled, "
              "%d write RPCs total"
              % (bed.client.cache.stats.get("cancelled_writes"),
                 bed.client.rpc.client_stats.get(SPROC.WRITE)))

        # --- explicit durability when you want it -----------------------------
        fd = yield from k.open("/data/report.txt", OpenMode.WRITE)
        yield from k.fsync(fd)
        yield from k.close(fd)
        print("after fsync: %d write RPCs (now the data is on the "
              "server's disk)" % bed.client.rpc.client_stats.get(SPROC.WRITE))

    bed.run(workload())

    print("\nserver state table: %d live entries, %d bytes"
          % (len(bed.server.state), bed.server.state.memory_bytes()))
    for entry in bed.server.state.entries():
        print("  %s -> %s (version %d)"
              % (entry.key, entry.state.value, entry.version))
    print("\nsimulated elapsed time: %.3f seconds" % bed.sim.now)


if __name__ == "__main__":
    main()
